package aserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"audiofile/internal/core"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// request is one framed client request. Hot (data-plane) requests are
// dispatched inline by the reader; control-plane requests make a
// synchronous round trip through the server loop.
type request struct {
	c    *client
	op   uint8
	ext  uint8
	body []byte
	// frame is the pooled buffer backing body (nil when the body is
	// caller-owned, as in tests and benchmarks). A park takes ownership
	// of the frame; otherwise the reader recycles it after dispatch.
	frame *[]byte
	// done is set on control-plane requests: the loop closes it once the
	// request has been dispatched, releasing the reader to move on. The
	// round trip is what preserves per-connection FIFO order across the
	// control/data plane split.
	done chan struct{}
}

// ac is the server-side audio context (§5.6): the parameters a client
// binds once instead of repeating on every play and record request.
//
// An ac is touched by two goroutines — the connection's reader (hot
// dispatch) and the server loop (attribute changes) — but never at the
// same time: the reader performs control operations as synchronous round
// trips, so every loop-side mutation is ordered against the reader's own
// requests. Fields shared with engine retries (recording, coder state)
// are only used under the owning engine's lock.
type ac struct {
	id       uint32
	dev      *core.Device
	devIndex int
	playGain int
	recGain  int
	preempt  bool
	enc      sampleconv.Encoding
	channels int
	// Conversion-module state for compressed contexts (§5.4: conversion
	// modules handle compressed audio data types). ADPCM is stateful, so
	// each direction keeps a coder across requests of the stream.
	playCoder *sampleconv.ADPCMCoder
	recCoder  *sampleconv.ADPCMCoder
	// recording marks contexts that have recorded at least once; the
	// first record increments the device's RecRefCount so the periodic
	// record update runs (§7.4.1). Guarded by the owning engine's lock.
	recording bool
	// subscribed marks contexts attached to their device's broadcast
	// channel (broadcast.go). Guarded by the owning engine's lock.
	subscribed bool
}

// client is one connection's server-side state.
type client struct {
	s     *Server
	conn  net.Conn
	order binary.ByteOrder

	// seq counts dispatched requests; its low 16 bits are the protocol
	// sequence number. Atomic because events are stamped with it from
	// engine goroutines while the reader advances it.
	seq atomic.Uint32
	// dead marks a client that must receive no further output (eviction,
	// unregister). Checked by every sender.
	dead atomic.Bool

	outCh  chan *wireMsg
	closed chan struct{}

	// queuedBytes is the marshaled bytes sitting in outCh: incremented by
	// send before enqueue, decremented by the writer after the bytes
	// reach the kernel (and by drainResidual for bytes that never do).
	queuedBytes atomic.Int64
	// lastActive is the unix-nano time of the last dispatched request,
	// the idleness key for server-wide shedding.
	lastActive atomic.Int64
	// flow is the slow-consumer eviction policy (see overload.go).
	flow evictPolicy

	// Eviction state. evict() runs once: it records why (closeReason,
	// classified into a counter by removeClient) and what to tell the
	// client (goodbye, a proto.Err* code the writer sends as its last
	// message), then interrupts the writer via the evicted channel.
	goodbye     atomic.Uint32
	closeReason atomic.Uint32
	evicted     chan struct{}
	evictOnce   sync.Once

	acs        map[uint32]*ac
	eventMasks map[int]uint32 // guarded by Server.clientMu

	// stage coalesces small replies generated while dispatching a run
	// (stagedReply/flushStage). Touched only by the goroutine inside
	// dispatchHotGroup and always flushed before the group's engine lock
	// drops, so it is empty between groups and teardown never finds bytes
	// here.
	stage *wireMsg

	removed bool // loop-side flag: removeClient already ran
}

// newClient builds a connection's server-side state with the server's
// per-client budgets applied. Shared by handleConn and the bench/test
// harnesses so they exercise the real queue and writer policy.
func newClient(s *Server, conn net.Conn, order binary.ByteOrder) *client {
	c := &client{
		s:          s,
		conn:       conn,
		order:      order,
		outCh:      make(chan *wireMsg, outQueueDepth),
		closed:     make(chan struct{}),
		evicted:    make(chan struct{}),
		acs:        make(map[uint32]*ac),
		eventMasks: make(map[int]uint32),
	}
	// Field-by-field: evictPolicy holds an atomic and must not be copied.
	c.flow.budget = s.budget.clientQueue
	c.flow.grace = s.budget.evictGrace
	c.flow.rate = s.budget.evictRate
	c.lastActive.Store(time.Now().UnixNano())
	return c
}

// evict marks the client for disconnection with a typed protocol error.
// First call wins; the writer wakes, sends the goodbye, and closes the
// transport. Callable from any goroutine, never blocks.
func (c *client) evict(reason uint32, code uint8) {
	c.evictOnce.Do(func() {
		c.closeReason.Store(reason)
		c.goodbye.Store(uint32(code))
		c.dead.Store(true)
		// A writer blocked mid-write on a transport that stopped draining
		// must not delay the teardown: expire the in-flight write. The
		// goodbye flush arms its own fresh deadline.
		c.conn.SetWriteDeadline(time.Now()) //nolint:errcheck
		close(c.evicted)
	})
}

// outQueueDepth bounds the per-client outgoing message queue in
// messages; it is the hard backstop behind the byte-budget policy. A
// client that stops reading while the server has this many messages
// queued is evicted immediately rather than allowed to wedge the server.
const outQueueDepth = 1024

// handleConn performs connection setup and runs the reader.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		// The writer goroutine owns closing the conn after draining.
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Request and reply boundaries matter more than segment
		// coalescing for an interactive audio stream.
		tc.SetNoDelay(!s.opts.TCPDelay) //nolint:errcheck
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	setup, order, err := proto.ReadSetupRequest(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	// A draining server accepts no new sessions; the listener is already
	// closed, but races (and DialPipe) can still deliver setups here.
	if s.draining.Load() {
		rep := proto.SetupReply{Success: false, Reason: "server draining",
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	// Version negotiation: the major version must match; minor skew is
	// tolerated (the X convention the protocol setup copies).
	if setup.Major != proto.ProtocolMajor {
		rep := proto.SetupReply{Success: false,
			Reason: fmt.Sprintf("protocol version mismatch: server %d.%d, client %d.%d",
				proto.ProtocolMajor, proto.ProtocolMinor, setup.Major, setup.Minor),
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	if !s.hostAllowed(conn) {
		rep := proto.SetupReply{Success: false, Reason: "access denied",
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	// The setup reply's device count is a uint8 on the wire: a server
	// hosting more than 255 devices (the PBX workloads) advertises the
	// first 255. The rest are reachable by index through operations that
	// do not consult the advertised table (event selection, GetTime).
	descs := s.descs
	if len(descs) > 255 {
		descs = descs[:255]
	}
	rep := proto.SetupReply{
		Success: true,
		Major:   proto.ProtocolMajor, Minor: proto.ProtocolMinor,
		Vendor:  s.opts.Vendor,
		Devices: append([]proto.DeviceDesc(nil), descs...),
	}
	if err := rep.Send(conn, order); err != nil {
		conn.Close()
		return
	}

	c := newClient(s, conn, order)
	select {
	case s.regCh <- c:
	case <-s.done:
		conn.Close()
		return
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.writer()
	}()
	c.reader()
}

// hotOp reports whether op belongs to the data plane: dispatched inline
// by the reader under the owning engine's lock rather than through the
// server loop.
func hotOp(op uint8) bool {
	return op == proto.OpPlaySamples || op == proto.OpRecordSamples ||
		op == proto.OpGetTime
}

// readerBufBytes sizes the reader's framing buffer. It is deliberately
// small: headers and control bodies batch through it (dozens of 8–16 byte
// requests per refill), while bulk sample payloads overflow it and are
// read by readBodyDirect straight from the socket into the pooled frame,
// skipping the intermediate copy a large bufio buffer would force.
const readerBufBytes = 512

// readBodyDirect fills body with the request bytes following the header:
// whatever the framing reader has already buffered is taken from it, and
// the remainder is read straight from the socket into the pooled frame.
func readBodyDirect(br *bufio.Reader, conn io.Reader, body []byte) error {
	n := br.Buffered()
	if n > len(body) {
		n = len(body)
	}
	if n > 0 {
		if _, err := io.ReadFull(br, body[:n]); err != nil {
			return err
		}
	}
	if n < len(body) {
		if _, err := io.ReadFull(conn, body[n:]); err != nil {
			return err
		}
	}
	return nil
}

// runFrame is one framed request in a coalesced ingress run: the header
// fields plus the pooled frame holding the body.
type runFrame struct {
	op, ext uint8
	frame   *[]byte
}

// maxRunLen bounds how many requests one ingress run carries. The run
// slice is allocated once per connection; the bound also caps how long a
// group can hold an engine lock.
const maxRunLen = 32

// reader frames requests off the wire and dispatches them: hot ops
// inline to the owning engine, control ops through the loop. It reads
// one request ahead of a blocked (parked) request — the read keeps
// disconnect detection live while parked; the barrier before dispatch
// keeps per-connection FIFO order.
//
// With batching on, after the blocking read frames one request the
// reader peeks the framing buffer and frames every further request
// already sitting whole in it (frameMore); the run then dispatches as a
// unit, with consecutive same-engine hot ops served under one lock
// acquisition (dispatchRun).
func (c *client) reader() {
	br := bufio.NewReaderSize(c.conn, readerBufBytes)
	var hdr [4]byte
	req := &request{c: c}              // reused across hot requests; parks copy out of it
	var await *parked                  // outstanding blocked request, if any
	run := make([]runFrame, 0, maxRunLen)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		op, ext := hdr[0], hdr[1]
		n := int(c.order.Uint16(hdr[2:])) * 4
		if n < 4 {
			break
		}
		framep := c.s.getFrame(n - 4)
		if err := readBodyDirect(br, c.conn, *framep); err != nil {
			c.s.putFrame(framep)
			break
		}
		run = append(run[:0], runFrame{op, ext, framep})
		if c.s.batching {
			run = c.frameMore(br, run)
		}
		cont, p := c.dispatchRun(run, await, req)
		if !cont {
			return
		}
		await = p
		if c.dead.Load() {
			break
		}
	}
	select {
	case c.s.unregCh <- c:
	case <-c.s.done:
	case <-c.closed:
	}
}

// frameMore extends run with requests already sitting whole in the
// framing buffer. It never blocks: a header is only consumed once its
// complete body is also buffered, so a partial tail stays for the main
// loop's blocking path to finish reading. A malformed header (length
// under one unit) is left unconsumed too — the main loop rejects it on
// its next iteration, after the current run has been dispatched, exactly
// where the one-at-a-time path would have stopped.
func (c *client) frameMore(br *bufio.Reader, run []runFrame) []runFrame {
	for len(run) < maxRunLen && br.Buffered() >= 4 {
		hdr, err := br.Peek(4)
		if err != nil {
			break
		}
		n := int(c.order.Uint16(hdr[2:])) * 4
		if n < 4 || br.Buffered() < n {
			break
		}
		op, ext := hdr[0], hdr[1]
		br.Discard(4) //nolint:errcheck — peeked above
		framep := c.s.getFrame(n - 4)
		if _, err := io.ReadFull(br, *framep); err != nil {
			// Unreachable — the body is buffered — but never drop a frame.
			c.s.putFrame(framep)
			break
		}
		run = append(run, runFrame{op, ext, framep})
	}
	return run
}

// dispatchRun dispatches a framed run in order: control ops round-trip
// through the loop one at a time, hot ops the shallow decode can place
// are grouped by engine and served under one lock acquisition, and
// everything else dispatches standalone. A park suspends the run at the
// parked request; the remaining frames dispatch after the park resolves,
// preserving per-connection FIFO order. It returns cont=false when the
// connection is being torn down (the caller returns without the
// unregister handshake, as the one-at-a-time path did) and the
// outstanding park, if any.
func (c *client) dispatchRun(run []runFrame, await *parked, req *request) (cont bool, _ *parked) {
	i := 0
	for i < len(run) {
		if await != nil {
			select {
			case <-await.done:
				await = nil
			case <-c.closed:
				c.putFrames(run[i:])
				return false, nil
			case <-c.s.done:
				c.putFrames(run[i:])
				return false, nil
			}
		}
		if c.dead.Load() {
			c.putFrames(run[i:])
			return true, nil
		}
		rf := run[i]
		if !hotOp(rf.op) {
			req.op, req.ext, req.body, req.frame = rf.op, rf.ext, *rf.frame, rf.frame
			req.done = make(chan struct{})
			select {
			case c.s.reqCh <- req:
			case <-c.s.done:
				c.putFrames(run[i:])
				return false, nil
			case <-c.closed:
				c.putFrames(run[i:])
				return false, nil
			}
			select {
			case <-req.done:
			case <-c.s.stopped:
				c.putFrames(run[i:])
				return false, nil
			}
			c.s.putFrame(rf.frame)
			i++
			continue
		}
		// Group consecutive hot requests the shallow decode places on the
		// same engine. hotEngine is evaluated here — after any control
		// round trip earlier in the run — so AC mutations ordered by those
		// round trips are visible.
		var e *engine
		if c.s.batching {
			e = c.s.hotEngine(c, rf)
		}
		j := i + 1
		for e != nil && j < len(run) && hotOp(run[j].op) && c.s.hotEngine(c, run[j]) == e {
			j++
		}
		if e == nil || j == i+1 {
			// Standalone: unknown destination (the dispatcher produces the
			// proper error reply) or a group of one.
			req.op, req.ext, req.body, req.frame, req.done = rf.op, rf.ext, *rf.frame, rf.frame, nil
			p := c.s.dispatchHot(req)
			if p == nil {
				c.s.putFrame(rf.frame)
			}
			// On park the frame now belongs to the parked state; it
			// returns to the pool when the park finishes.
			await = p
			i++
			continue
		}
		consumed, p := c.s.dispatchHotGroup(c, e, run[i:j], req)
		for k := i; k < i+consumed; k++ {
			if p != nil && k == i+consumed-1 {
				break // the parked request's frame belongs to the park now
			}
			c.s.putFrame(run[k].frame)
		}
		await = p
		i += consumed
	}
	return true, await
}

// putFrames returns a run's remaining pooled frames on an abort path.
func (c *client) putFrames(run []runFrame) {
	for _, rf := range run {
		c.s.putFrame(rf.frame)
	}
}

// maxWriteVec bounds how many queued messages one vectored write
// gathers. It caps the pooled buffers the writer can hold checked out at
// once; the kernel-side iovec limit is handled by net.Buffers itself.
const maxWriteVec = 64

// goodbyeTimeout bounds the final write of an evicted or drained
// connection: the typed error (and any queued tail) is offered to the
// peer for this long, then the transport closes regardless.
const goodbyeTimeout = 250 * time.Millisecond

// writer drains the outgoing queue onto the wire until the client is
// evicted or the loop closes it (c.closed). Queued messages are gathered
// into one vectored write (writev on TCP and Unix sockets), so marshaled
// bytes go from the pooled message buffers to the kernel without the
// intermediate copy a bufio layer would make. Buffers return to the pool
// once their vector has been written.
//
// While the client is over its byte budget every flush runs under a
// write deadline: a transport that stops draining for longer than the
// policy allows is a missed deadline, which is eviction. On eviction the
// writer sends the typed goodbye error, closes the conn (unblocking the
// reader), and finally settles the byte accounting for anything that
// never reached the wire (drainResidual, which must run after the close
// so the reader-unregister path can complete first).
func (c *client) writer() {
	defer c.drainResidual()
	defer c.conn.Close()
	vec := make([][]byte, 0, maxWriteVec)
	owned := make([]*wireMsg, 0, maxWriteVec)
	// bufs lives outside flush: WriteTo takes its address, and a closure
	// local would escape to the heap on every call.
	var bufs net.Buffers
	flush := func() error {
		if len(vec) == 0 {
			return nil
		}
		c.s.sm.writevBatch.Observe(int64(len(vec)))
		// WriteTo consumes the vector in place, so sum the byte count
		// first; the accounting must match what was handed over whether
		// or not the write succeeds (the transport owns the bytes now).
		var nb int64
		for _, b := range vec {
			nb += int64(len(b))
		}
		bufs = vec
		_, err := bufs.WriteTo(c.conn)
		bufs = nil
		// Release, not unconditional put: a broadcast message in the vector
		// is shared with other subscribers' queues, and only the last
		// releaser returns it to the pool.
		for _, m := range owned {
			m.release()
		}
		vec, owned = vec[:0], owned[:0]
		queued := c.queuedBytes.Add(-nb)
		c.s.sm.queuedBytes.Add(-nb)
		c.flow.onDrain(queued)
		return err
	}
	// goodbye drains what is already queued, appends the typed close
	// error if one was recorded, and writes it all best-effort under a
	// short deadline so a peer that stopped reading cannot pin us here.
	goodbye := func() {
		c.conn.SetWriteDeadline(time.Now().Add(goodbyeTimeout)) //nolint:errcheck
		for {
			select {
			case msg := <-c.outCh:
				vec = append(vec, msg.buf)
				owned = append(owned, msg)
				if len(vec) == maxWriteVec && flush() != nil {
					return
				}
				continue
			default:
			}
			break
		}
		if code := uint8(c.goodbye.Load()); code != 0 {
			m := getMsg("goodbye")
			w := proto.Writer{Order: c.order, Buf: m.buf}
			e := proto.ErrorMsg{Code: code, Seq: uint16(c.seq.Load()),
				BadValue: uint32(c.queuedBytes.Load())}
			e.Encode(&w)
			m.buf = w.Buf
			// The goodbye joins the accounting so the flush's decrement
			// balances.
			n := int64(len(m.buf))
			c.queuedBytes.Add(n)
			c.s.sm.queuedBytes.Add(n)
			vec = append(vec, m.buf)
			owned = append(owned, m)
		}
		flush() //nolint:errcheck — connection is going away
	}
	for {
		var msg *wireMsg
		select {
		case msg = <-c.outCh:
		case <-c.evicted:
			goodbye()
			return
		case <-c.closed:
			goodbye()
			return
		}
		vec = append(vec, msg.buf)
		owned = append(owned, msg)
		// Coalesce whatever else is queued into the same vector.
		for len(vec) < maxWriteVec {
			select {
			case more := <-c.outCh:
				vec = append(vec, more.buf)
				owned = append(owned, more)
				continue
			default:
			}
			break
		}
		allow, over := c.flow.writeAllowance(c.queuedBytes.Load(), time.Now().UnixNano())
		if over {
			c.conn.SetWriteDeadline(time.Now().Add(allow)) //nolint:errcheck
		}
		err := flush()
		if over && err == nil {
			c.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
		}
		if err != nil {
			if c.dead.Load() {
				// Evicted mid-write (the deadline interrupt): still try
				// to say why before closing.
				goodbye()
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.s.logf("aserver: client %v missed its write deadline, evicting", c.conn.RemoteAddr())
				c.evict(closeReasonEvict, proto.ErrOverload)
				goodbye()
				return
			}
			return
		}
	}
}

// drainResidual settles the byte accounting for messages that were
// queued but never written. It waits for removeClient (which closes
// c.closed) because until the client is out of every registry a sender
// may still be enqueueing; after that the final sweep is exact — any
// sender racing past the dead check compensates via unqueueOne.
func (c *client) drainResidual() {
	settle := func(m *wireMsg) {
		n := int64(len(m.buf))
		c.queuedBytes.Add(-n)
		c.s.sm.queuedBytes.Add(-n)
		m.release()
	}
	for {
		select {
		case m := <-c.outCh:
			settle(m)
		case <-c.closed:
			for {
				select {
				case m := <-c.outCh:
					settle(m)
				default:
					return
				}
			}
		}
	}
}

// unqueueOne removes and settles one queued message, if any. Called by a
// sender that enqueued and then observed the client dead: the writer's
// final sweep may already be done, so the sender takes one message back
// out (not necessarily its own; the accounting balances either way)
// rather than strand bytes in the queue.
func (c *client) unqueueOne() {
	select {
	case m := <-c.outCh:
		n := int64(len(m.buf))
		c.queuedBytes.Add(-n)
		c.s.sm.queuedBytes.Add(-n)
		m.release()
	default:
	}
}

// send queues a marshaled message; it reports false (and evicts the
// client) if the queue is at its hard cap. One reference on msg passes
// to the writer goroutine on success and is released on failure — so a
// broadcast caller that retained per-subscriber is square either way.
// Never blocks; safe from any goroutine.
func (c *client) send(msg *wireMsg) bool {
	if c.dead.Load() {
		msg.release()
		return false
	}
	n := int64(len(msg.buf))
	select {
	case c.outCh <- msg:
		queued := c.queuedBytes.Add(n)
		c.s.sm.queuedBytes.Add(n)
		if c.dead.Load() {
			// Lost a race with teardown; see unqueueOne.
			c.unqueueOne()
			return false
		}
		c.s.sm.sendQueueDepth.Observe(int64(len(c.outCh)))
		if queued > c.flow.budget {
			c.overBudget(queued)
		}
		return true
	default:
		// Hard cap: outQueueDepth messages queued and the writer is not
		// draining. Instant eviction, no policy grace.
		msg.release()
		c.s.sm.queueOverflows.Inc()
		c.s.logf("aserver: client %v output queue overflow, evicting", c.conn.RemoteAddr())
		c.evict(closeReasonEvict, proto.ErrOverload)
		return false
	}
}

// overBudget runs the slow-client policy on an over-budget enqueue. Out
// of line so the common under-budget send never reads the clock.
func (c *client) overBudget(queued int64) {
	if c.flow.onQueue(queued, time.Now().UnixNano()) == flowEvict {
		c.s.logf("aserver: client %v over send budget (%d bytes) past its allowance, evicting",
			c.conn.RemoteAddr(), queued)
		c.evict(closeReasonEvict, proto.ErrOverload)
	}
}

// newRecordReplyMsg checks out a wire message for a record reply with
// room for n payload bytes and returns the message and its payload
// region. The record path hands the payload region to the device, which
// converts samples from the record ring straight into it (under the
// owning engine's lock), then seals the message with finishRecordReply.
func newRecordReplyMsg(n int) (m *wireMsg, payload []byte) {
	m = getMsg("record-reply")
	buf := msgBytes(m, proto.ReplyHeaderBytes+proto.Pad4(n))
	return m, buf[proto.ReplyHeaderBytes : proto.ReplyHeaderBytes+n]
}

// finishRecordReply seals and queues a record reply whose first n payload
// bytes the device has already converted in place: byte-swap for
// opposite-order sample data, truncate to the delivered length, zero the
// pad, stamp the header. The sample data is never staged anywhere but
// the wire message itself.
func finishRecordReply(c *client, a *ac, m *wireMsg, n int, now uint32, flags uint8, seq uint16) {
	buf := m.buf
	if flags&proto.SampleFlagBigEndian != 0 {
		sampleconv.SwapBytes(a.enc, buf[proto.ReplyHeaderBytes:proto.ReplyHeaderBytes+n])
	}
	total := proto.ReplyHeaderBytes + proto.Pad4(n)
	for i := proto.ReplyHeaderBytes + n; i < total; i++ {
		buf[i] = 0
	}
	m.buf = buf[:total]
	proto.PutReplyHeader(c.order, buf, &proto.Reply{Seq: seq, Time: now, Aux: uint32(n)}, n)
	// Record egress is counted here, the seal point every record reply
	// passes through (first-try, retried, and compressed paths alike).
	em := c.s.engineByDev[a.devIndex].m
	em.recBytes.Add(uint64(n))
	em.recChunk.Observe(int64(n))
	c.send(m)
}

// sendReply marshals and queues a reply for the request carrying seq.
func (c *client) sendReply(p *proto.Reply, seq uint16) {
	p.Seq = seq
	m := getMsg("reply")
	w := proto.Writer{Order: c.order, Buf: m.buf}
	p.Encode(&w)
	m.buf = w.Buf
	c.send(m)
}

// sendError marshals and queues a protocol error for the request
// carrying seq.
func (c *client) sendError(code uint8, badValue uint32, op uint8, seq uint16) {
	c.s.sm.clientErrors.Inc()
	e := proto.ErrorMsg{Code: code, Seq: seq, BadValue: badValue, MajorOp: op}
	m := getMsg("error")
	w := proto.Writer{Order: c.order, Buf: m.buf}
	e.Encode(&w)
	m.buf = w.Buf
	c.send(m)
}

// stageFlushBytes caps the staging buffer: a group staging more than
// this flushes mid-run, so one pooled message never grows without bound.
const stageFlushBytes = 4096

// stageMsg returns the staging message, checking one out lazily so a
// group whose replies all go direct (record replies, suppressed play
// acks) costs nothing here.
func (c *client) stageMsg() *wireMsg {
	if c.stage == nil {
		c.stage = getMsg("staged")
	}
	return c.stage
}

// stagedReply appends a reply to the staging buffer instead of queueing
// it as its own message; flushStage hands the whole batch to the writer
// as one message. Only fixed-header replies come through here — anything
// carrying Extra uses sendReply (after a flush, to keep reply order).
func (c *client) stagedReply(p *proto.Reply, seq uint16) {
	p.Seq = seq
	m := c.stageMsg()
	w := proto.Writer{Order: c.order, Buf: m.buf}
	p.Encode(&w)
	m.buf = w.Buf
	if len(m.buf) >= stageFlushBytes {
		c.flushStage()
	}
}

// stagedError is sendError's staging twin.
func (c *client) stagedError(code uint8, badValue uint32, op uint8, seq uint16) {
	c.s.sm.clientErrors.Inc()
	e := proto.ErrorMsg{Code: code, Seq: seq, BadValue: badValue, MajorOp: op}
	m := c.stageMsg()
	w := proto.Writer{Order: c.order, Buf: m.buf}
	e.Encode(&w)
	m.buf = w.Buf
	if len(m.buf) >= stageFlushBytes {
		c.flushStage()
	}
}

// flushStage queues the staged replies as one message: one pooled
// buffer, one writev iovec, at most one writer wakeup for the whole run.
// It goes through the ordinary send path, so the byte budget and
// eviction accounting see staged bytes exactly like any other reply.
func (c *client) flushStage() {
	m := c.stage
	if m == nil {
		return
	}
	c.stage = nil
	if len(m.buf) == 0 {
		m.release()
		return
	}
	c.s.sm.stagedBytes.Add(uint64(len(m.buf)))
	c.s.sm.stagedFlushes.Inc()
	c.send(m)
}

// sendEvent marshals and queues an event, stamped with the sequence
// number of the client's most recently dispatched request.
func (c *client) sendEvent(ev *proto.Event) {
	ev.Seq = uint16(c.seq.Load())
	m := getMsg("event")
	w := proto.Writer{Order: c.order, Buf: m.buf}
	ev.Encode(&w)
	m.buf = w.Buf
	c.send(m)
}
