package aserver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"audiofile/internal/core"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// request is one framed client request. Hot (data-plane) requests are
// dispatched inline by the reader; control-plane requests make a
// synchronous round trip through the server loop.
type request struct {
	c    *client
	op   uint8
	ext  uint8
	body []byte
	// frame is the pooled buffer backing body (nil when the body is
	// caller-owned, as in tests and benchmarks). A park takes ownership
	// of the frame; otherwise the reader recycles it after dispatch.
	frame *[]byte
	// done is set on control-plane requests: the loop closes it once the
	// request has been dispatched, releasing the reader to move on. The
	// round trip is what preserves per-connection FIFO order across the
	// control/data plane split.
	done chan struct{}
}

// ac is the server-side audio context (§5.6): the parameters a client
// binds once instead of repeating on every play and record request.
//
// An ac is touched by two goroutines — the connection's reader (hot
// dispatch) and the server loop (attribute changes) — but never at the
// same time: the reader performs control operations as synchronous round
// trips, so every loop-side mutation is ordered against the reader's own
// requests. Fields shared with engine retries (recording, coder state)
// are only used under the owning engine's lock.
type ac struct {
	id       uint32
	dev      *core.Device
	devIndex int
	playGain int
	recGain  int
	preempt  bool
	enc      sampleconv.Encoding
	channels int
	// Conversion-module state for compressed contexts (§5.4: conversion
	// modules handle compressed audio data types). ADPCM is stateful, so
	// each direction keeps a coder across requests of the stream.
	playCoder *sampleconv.ADPCMCoder
	recCoder  *sampleconv.ADPCMCoder
	// recording marks contexts that have recorded at least once; the
	// first record increments the device's RecRefCount so the periodic
	// record update runs (§7.4.1). Guarded by the owning engine's lock.
	recording bool
}

// client is one connection's server-side state.
type client struct {
	s     *Server
	conn  net.Conn
	order binary.ByteOrder

	// seq counts dispatched requests; its low 16 bits are the protocol
	// sequence number. Atomic because events are stamped with it from
	// engine goroutines while the reader advances it.
	seq atomic.Uint32
	// dead marks a client that must receive no further output (queue
	// overflow, unregister). Checked by every sender.
	dead atomic.Bool

	outCh  chan *[]byte
	closed chan struct{}

	acs        map[uint32]*ac
	eventMasks map[int]uint32 // guarded by Server.clientMu

	removed bool // loop-side flag: removeClient already ran
}

// outQueueDepth bounds the per-client outgoing message queue. A client
// that stops reading while the server has this much buffered is
// disconnected rather than allowed to wedge the server.
const outQueueDepth = 1024

// handleConn performs connection setup and runs the reader.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		// The writer goroutine owns closing the conn after draining.
	}()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	setup, order, err := proto.ReadSetupRequest(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	// Version negotiation: the major version must match; minor skew is
	// tolerated (the X convention the protocol setup copies).
	if setup.Major != proto.ProtocolMajor {
		rep := proto.SetupReply{Success: false,
			Reason: fmt.Sprintf("protocol version mismatch: server %d.%d, client %d.%d",
				proto.ProtocolMajor, proto.ProtocolMinor, setup.Major, setup.Minor),
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	if !s.hostAllowed(conn) {
		rep := proto.SetupReply{Success: false, Reason: "access denied",
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	rep := proto.SetupReply{
		Success: true,
		Major:   proto.ProtocolMajor, Minor: proto.ProtocolMinor,
		Vendor:  s.opts.Vendor,
		Devices: append([]proto.DeviceDesc(nil), s.descs...),
	}
	if err := rep.Send(conn, order); err != nil {
		conn.Close()
		return
	}

	c := &client{
		s:          s,
		conn:       conn,
		order:      order,
		outCh:      make(chan *[]byte, outQueueDepth),
		closed:     make(chan struct{}),
		acs:        make(map[uint32]*ac),
		eventMasks: make(map[int]uint32),
	}
	select {
	case s.regCh <- c:
	case <-s.done:
		conn.Close()
		return
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.writer()
	}()
	c.reader()
}

// hotOp reports whether op belongs to the data plane: dispatched inline
// by the reader under the owning engine's lock rather than through the
// server loop.
func hotOp(op uint8) bool {
	return op == proto.OpPlaySamples || op == proto.OpRecordSamples ||
		op == proto.OpGetTime
}

// reader frames requests off the wire and dispatches them: hot ops
// inline to the owning engine, control ops through the loop. It reads
// one request ahead of a blocked (parked) request — the read keeps
// disconnect detection live while parked; the barrier before dispatch
// keeps per-connection FIFO order.
func (c *client) reader() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [4]byte
	req := &request{c: c} // reused across hot requests; parks copy out of it
	var await *parked     // outstanding blocked request, if any
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		op, ext := hdr[0], hdr[1]
		n := int(c.order.Uint16(hdr[2:])) * 4
		if n < 4 {
			break
		}
		framep := getReqFrame(n - 4)
		if _, err := io.ReadFull(br, *framep); err != nil {
			putReqFrame(framep)
			break
		}
		if await != nil {
			select {
			case <-await.done:
				await = nil
			case <-c.closed:
				putReqFrame(framep)
				return
			case <-c.s.done:
				putReqFrame(framep)
				return
			}
		}
		if c.dead.Load() {
			putReqFrame(framep)
			break
		}
		req.op, req.ext, req.body, req.frame, req.done = op, ext, *framep, framep, nil
		if hotOp(op) {
			await = c.s.dispatchHot(req)
			if await == nil {
				putReqFrame(framep)
			}
			// On park the frame now belongs to the parked state; it
			// returns to the pool when the park finishes.
			continue
		}
		req.done = make(chan struct{})
		select {
		case c.s.reqCh <- req:
		case <-c.s.done:
			putReqFrame(framep)
			return
		case <-c.closed:
			putReqFrame(framep)
			return
		}
		select {
		case <-req.done:
		case <-c.s.stopped:
			putReqFrame(framep)
			return
		}
		putReqFrame(framep)
	}
	select {
	case c.s.unregCh <- c:
	case <-c.s.done:
	case <-c.closed:
	}
}

// writer drains the outgoing queue onto the wire until the loop closes
// the client (c.closed). Message buffers return to the pool once their
// bytes have been handed to the bufio layer (which copies).
func (c *client) writer() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	defer c.conn.Close()
	for {
		var msg *[]byte
		select {
		case msg = <-c.outCh:
		case <-c.closed:
			// Drain anything already queued, then flush and go.
			for {
				select {
				case msg = <-c.outCh:
					bw.Write(*msg) //nolint:errcheck
					putMsg(msg)
					continue
				default:
				}
				break
			}
			bw.Flush() //nolint:errcheck
			return
		}
		_, err := bw.Write(*msg)
		putMsg(msg)
		if err != nil {
			return
		}
		// Coalesce whatever else is queued before flushing.
		for {
			select {
			case more := <-c.outCh:
				_, err := bw.Write(*more)
				putMsg(more)
				if err != nil {
					return
				}
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// send queues a marshaled message; it reports false (and abandons the
// client) if the queue is full. Ownership of msg passes to the writer
// goroutine on success and back to the pool on failure. Safe from any
// goroutine.
func (c *client) send(msg *[]byte) bool {
	if c.dead.Load() {
		putMsg(msg)
		return false
	}
	select {
	case c.outCh <- msg:
		return true
	default:
		putMsg(msg)
		c.s.logf("aserver: client %v output queue overflow, dropping connection", c.conn.RemoteAddr())
		// Mark the client dead and sever the transport; the reader exits
		// on the closed conn and the loop reclaims state via unregister.
		c.dead.Store(true)
		c.conn.Close()
		return false
	}
}

// sendReply marshals and queues a reply for the request carrying seq.
func (c *client) sendReply(p *proto.Reply, seq uint16) {
	p.Seq = seq
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	p.Encode(&w)
	*m = w.Buf
	c.send(m)
}

// sendError marshals and queues a protocol error for the request
// carrying seq.
func (c *client) sendError(code uint8, badValue uint32, op uint8, seq uint16) {
	e := proto.ErrorMsg{Code: code, Seq: seq, BadValue: badValue, MajorOp: op}
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	e.Encode(&w)
	*m = w.Buf
	c.send(m)
}

// sendEvent marshals and queues an event, stamped with the sequence
// number of the client's most recently dispatched request.
func (c *client) sendEvent(ev *proto.Event) {
	ev.Seq = uint16(c.seq.Load())
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	ev.Encode(&w)
	*m = w.Buf
	c.send(m)
}
