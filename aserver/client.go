package aserver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"audiofile/internal/core"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// request is one framed client request delivered to the server loop.
type request struct {
	c    *client
	op   uint8
	ext  uint8
	body []byte
}

// ac is the server-side audio context (§5.6): the parameters a client
// binds once instead of repeating on every play and record request.
type ac struct {
	id       uint32
	dev      *core.Device
	devIndex int
	playGain int
	recGain  int
	preempt  bool
	enc      sampleconv.Encoding
	channels int
	// Conversion-module state for compressed contexts (§5.4: conversion
	// modules handle compressed audio data types). ADPCM is stateful, so
	// each direction keeps a coder across requests of the stream.
	playCoder *sampleconv.ADPCMCoder
	recCoder  *sampleconv.ADPCMCoder
	// recording marks contexts that have recorded at least once; the
	// first record increments the device's RecRefCount so the periodic
	// record update runs (§7.4.1).
	recording bool
}

// parked captures a blocked request being resumed by the task mechanism:
// a play whose tail lies beyond the buffer horizon, or a blocking record
// whose data has not been captured yet.
type parked struct {
	req *request
	// play state: remaining data in playEnc (compressed contexts park
	// already-decompressed data)
	playData []byte
	playTime uint32
	playEnc  sampleconv.Encoding
	// playPooled is set when playData aliases a pool-owned staging buffer
	// (the ADPCM decompression output); it returns to the pool when the
	// parked play finally completes.
	playPooled *[]byte
	// record state is re-derived from the request on each retry
}

// client is one connection's server-side state.
type client struct {
	s     *Server
	conn  net.Conn
	order binary.ByteOrder
	seq   uint16

	outCh  chan *[]byte
	closed chan struct{}

	acs        map[uint32]*ac
	eventMasks map[int]uint32

	park    *parked
	pending []*request

	gone bool // loop-side flag after unregister
}

// outQueueDepth bounds the per-client outgoing message queue. A client
// that stops reading while the server has this much buffered is
// disconnected rather than allowed to wedge the single-threaded loop.
const outQueueDepth = 1024

// handleConn performs connection setup and runs the reader.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		// The writer goroutine owns closing the conn after draining.
	}()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	setup, order, err := proto.ReadSetupRequest(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	// Version negotiation: the major version must match; minor skew is
	// tolerated (the X convention the protocol setup copies).
	if setup.Major != proto.ProtocolMajor {
		rep := proto.SetupReply{Success: false,
			Reason: fmt.Sprintf("protocol version mismatch: server %d.%d, client %d.%d",
				proto.ProtocolMajor, proto.ProtocolMinor, setup.Major, setup.Minor),
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	if !s.hostAllowed(conn) {
		rep := proto.SetupReply{Success: false, Reason: "access denied",
			Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
		rep.Send(conn, order) //nolint:errcheck
		conn.Close()
		return
	}

	rep := proto.SetupReply{
		Success: true,
		Major:   proto.ProtocolMajor, Minor: proto.ProtocolMinor,
		Vendor:  s.opts.Vendor,
		Devices: append([]proto.DeviceDesc(nil), s.descs...),
	}
	if err := rep.Send(conn, order); err != nil {
		conn.Close()
		return
	}

	c := &client{
		s:          s,
		conn:       conn,
		order:      order,
		outCh:      make(chan *[]byte, outQueueDepth),
		closed:     make(chan struct{}),
		acs:        make(map[uint32]*ac),
		eventMasks: make(map[int]uint32),
	}
	select {
	case s.regCh <- c:
	case <-s.done:
		conn.Close()
		return
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.writer()
	}()
	c.reader()
}

// reader frames requests off the wire and feeds the loop.
func (c *client) reader() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		op, ext := hdr[0], hdr[1]
		n := int(c.order.Uint16(hdr[2:])) * 4
		if n < 4 {
			break
		}
		body := make([]byte, n-4)
		if _, err := io.ReadFull(br, body); err != nil {
			break
		}
		select {
		case c.s.reqCh <- &request{c: c, op: op, ext: ext, body: body}:
		case <-c.s.done:
			return
		case <-c.closed:
			return
		}
	}
	select {
	case c.s.unregCh <- c:
	case <-c.s.done:
	case <-c.closed:
	}
}

// writer drains the outgoing queue onto the wire until the loop closes
// the client (c.closed). Message buffers return to the pool once their
// bytes have been handed to the bufio layer (which copies).
func (c *client) writer() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	defer c.conn.Close()
	for {
		var msg *[]byte
		select {
		case msg = <-c.outCh:
		case <-c.closed:
			// Drain anything already queued, then flush and go.
			for {
				select {
				case msg = <-c.outCh:
					bw.Write(*msg) //nolint:errcheck
					putMsg(msg)
					continue
				default:
				}
				break
			}
			bw.Flush() //nolint:errcheck
			return
		}
		_, err := bw.Write(*msg)
		putMsg(msg)
		if err != nil {
			return
		}
		// Coalesce whatever else is queued before flushing.
		for {
			select {
			case more := <-c.outCh:
				_, err := bw.Write(*more)
				putMsg(more)
				if err != nil {
					return
				}
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// send queues a marshaled message; it reports false (and abandons the
// client) if the queue is full. Ownership of msg passes to the writer
// goroutine on success and back to the pool on failure.
func (c *client) send(msg *[]byte) bool {
	if c.gone {
		putMsg(msg)
		return false
	}
	select {
	case c.outCh <- msg:
		return true
	default:
		putMsg(msg)
		c.s.logf("aserver: client %v output queue overflow, dropping connection", c.conn.RemoteAddr())
		c.s.dropClient(c)
		return false
	}
}

// sendReply marshals and queues a reply.
func (c *client) sendReply(p *proto.Reply) {
	p.Seq = c.seq
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	p.Encode(&w)
	*m = w.Buf
	c.send(m)
}

// sendError marshals and queues a protocol error for the current request.
func (c *client) sendError(code uint8, badValue uint32, op uint8) {
	e := proto.ErrorMsg{Code: code, Seq: c.seq, BadValue: badValue, MajorOp: op}
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	e.Encode(&w)
	*m = w.Buf
	c.send(m)
}

// sendEvent marshals and queues an event.
func (c *client) sendEvent(ev *proto.Event) {
	ev.Seq = c.seq
	m := getMsg()
	w := proto.Writer{Order: c.order, Buf: *m}
	ev.Encode(&w)
	*m = w.Buf
	c.send(m)
}
