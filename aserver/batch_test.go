package aserver

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"audiofile/internal/netsim"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// Batching correctness: the coalesced ingress path (frameMore +
// dispatchRun + staged egress) must be observationally identical to the
// one-at-a-time path — same replies, same bytes, same per-connection
// FIFO order — under pipelined input, arbitrary packet boundaries, and
// parks that suspend a run in the middle.

// batchTestServer builds a one-codec server on a manual clock with the
// given batching mode.
func batchTestServer(t testing.TB, mode BatchMode) (*Server, *vdev.ManualClock) {
	t.Helper()
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices:  []DeviceSpec{{Kind: "codec", Clock: clk}},
		Logf:     func(string, ...any) {},
		Batching: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, clk
}

// handshake runs the little-endian setup exchange: the request goes out
// on w (which may fragment it), the reply comes back on r.
func handshake(t testing.TB, w io.Writer, r io.Reader) {
	t.Helper()
	sr := proto.SetupRequest{ByteOrder: proto.LittleEndianOrder,
		Major: proto.ProtocolMajor, Minor: proto.ProtocolMinor}
	if err := sr.Send(w); err != nil {
		t.Fatal(err)
	}
	rep, err := proto.ReadSetupReply(r, binary.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("setup refused: %s", rep.Reason)
	}
}

// TestBatchParkMidRunFIFO pipelines one write carrying a control op, a
// play that parks beyond the buffer horizon, and a tail of GetTimes.
// The whole burst lands in the framing buffer at once, so the batching
// reader coalesces it into a single ingress run; the park must suspend
// that run — no reply for anything behind the parked play until it
// resolves — and the replies must come back in request order.
func TestBatchParkMidRunFIFO(t *testing.T) {
	srv, clk := batchTestServer(t, BatchAuto)
	conn := srv.DialPipe()
	defer conn.Close()
	br := bufio.NewReader(conn)
	handshake(t, conn, br)

	w := proto.Writer{Order: binary.LittleEndian}
	// seq 1: CreateAC — a control round trip at the head of the run; the
	// hot requests behind it must see the context it creates.
	if err := proto.AppendCreateAC(&w, proto.CreateACReq{AC: 1, Device: 0}); err != nil {
		t.Fatal(err)
	}
	// seq 2: a play whose tail lies past the ~4 s buffer horizon — parks.
	if err := proto.AppendPlaySamples(&w, proto.PlaySamplesReq{
		AC: 1, Time: 40000, Data: make([]byte, 64),
	}); err != nil {
		t.Fatal(err)
	}
	// seq 3..6: GetTimes queued behind the park.
	for i := 0; i < 4; i++ {
		if err := proto.AppendDeviceReq(&w, proto.OpGetTime, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(w.Buf); err != nil {
		t.Fatal(err)
	}

	// While the head of the run is parked, the connection must be silent:
	// answering the GetTimes now would reorder the reply stream.
	if err := conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("got a reply while the head of the run was parked")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}

	// Advance past the play's window and run an update cycle: the park
	// resolves, then the suspended tail of the run dispatches.
	clk.Advance(48000)
	srv.Sync()

	var msg proto.Message
	for want := uint16(2); want <= 6; want++ {
		if err := proto.ReadMessageInto(br, binary.LittleEndian, &msg); err != nil {
			t.Fatal(err)
		}
		if msg.Reply == nil {
			t.Fatalf("want reply seq %d, got %+v", want, msg)
		}
		if msg.Reply.Seq != want {
			t.Fatalf("reply out of order: got seq %d, want %d", msg.Reply.Seq, want)
		}
	}
}

// batchScript turns fuzz bytes into a pipelined request stream over a
// small op alphabet: valid and invalid hot ops (staged replies, staged
// errors, standalone error paths), control ops that force a run flush
// (round-trip Sync, reply-less NoOp), and — keyed off the script length
// so both servers see the same stream — a trailing partial header or a
// malformed one (length under a unit), which must stop the connection at
// the same point on both paths.
func batchScript(script []byte) []byte {
	w := proto.Writer{Order: binary.LittleEndian}
	proto.AppendCreateAC(&w, proto.CreateACReq{AC: 1, Device: 0}) //nolint:errcheck
	for _, b := range script {
		switch b % 7 {
		case 0:
			proto.AppendDeviceReq(&w, proto.OpGetTime, 0) //nolint:errcheck
		case 1: // unknown device: standalone dispatch, error reply
			proto.AppendDeviceReq(&w, proto.OpGetTime, 99) //nolint:errcheck
		case 2:
			data := make([]byte, int(b>>3))
			for i := range data {
				data[i] = byte(i*3) + b
			}
			proto.AppendPlaySamples(&w, proto.PlaySamplesReq{ //nolint:errcheck
				AC: 1, Time: 4096, Data: data})
		case 3: // unknown AC: standalone dispatch, error reply
			proto.AppendPlaySamples(&w, proto.PlaySamplesReq{ //nolint:errcheck
				AC: 9, Time: 4096, Data: []byte{1, 2, 3, 4}})
		case 4: // non-blocking record of an already-captured window
			proto.AppendRecordSamples(&w, proto.RecordSamplesReq{ //nolint:errcheck
				AC: 1, Time: 0, NBytes: uint32(b >> 3), Flags: proto.SampleFlagNoBlock})
		case 5: // round-trip control op in the middle of a run
			proto.AppendEmptyReq(&w, proto.OpSyncConnection, 0) //nolint:errcheck
		case 6: // reply-less control op
			proto.AppendEmptyReq(&w, proto.OpNoOperation, 0) //nolint:errcheck
		}
	}
	switch len(script) % 3 {
	case 1: // partial trailing header: never framed, dies with the conn
		w.Buf = append(w.Buf, proto.OpGetTime, 0)
	case 2: // malformed header (length 0 < one unit): reader stops here
		w.Buf = append(w.Buf, 0xff, 0, 0, 0)
	}
	return w.Buf
}

// batchReplyStream runs one script against a fresh server in the given
// batching mode and returns the complete reply byte stream. seed != 0
// fragments the client's writes into tiny chunks at seeded-random
// boundaries, so the batching reader sees every possible split of the
// same logical stream.
func batchReplyStream(t *testing.T, mode BatchMode, stream []byte, seed int64) []byte {
	t.Helper()
	srv, clk := batchTestServer(t, mode)
	// Give device time a head start so the script's record windows are
	// already captured (identically on both servers: the manual clock
	// never moves again).
	clk.Advance(4096)
	srv.Sync()

	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	tc := nc.(*net.TCPConn)
	var wc io.Writer = tc
	if seed != 0 {
		wc = netsim.NewFaultConn(tc, netsim.FaultConfig{
			Seed: seed, FragmentWrites: true, MaxFragment: 5})
	}
	br := bufio.NewReader(tc)
	handshake(t, wc, br)
	if _, err := wc.Write(stream); err != nil {
		t.Fatal(err)
	}
	// Half-close: the server reader sees EOF once it has consumed every
	// frame, tears the session down, and the writer flushes the tail.
	if err := tc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := tc.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	replies, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading reply stream: %v", err)
	}
	return replies
}

// FuzzBatchFraming feeds the same pipelined request stream to a batching
// server (through fragmented writes, so runs start at arbitrary packet
// boundaries) and a one-at-a-time server, and requires the two reply
// streams to agree byte for byte. Per-connection FIFO plus deterministic
// devices make the full reply stream — replies, staged concatenations,
// error messages, and the teardown point — a complete observational
// fingerprint of the dispatch path.
func FuzzBatchFraming(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6}, int64(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 16, 24, 32}, int64(3))
	f.Add([]byte{2, 18, 26, 2, 5, 0, 0, 6, 4, 12, 3, 1}, int64(4))
	f.Add(bytes.Repeat([]byte{0}, 64), int64(5))
	f.Add([]byte{4, 20, 36, 52, 5, 4, 0, 2}, int64(6))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		if len(script) > 256 {
			script = script[:256]
		}
		if seed == 0 {
			seed = 1
		}
		stream := batchScript(script)
		want := batchReplyStream(t, BatchOff, stream, 0)
		got := batchReplyStream(t, BatchAuto, stream, seed)
		if !bytes.Equal(got, want) {
			t.Fatalf("batched reply stream differs from one-at-a-time:\nbatched   %d bytes: %x\nunbatched %d bytes: %x",
				len(got), got, len(want), want)
		}
	})
}
