package aserver

import "sync"

// Staging pools for the dispatch hot path. Every play and record request
// used to allocate its staging (record destination, ADPCM decompression
// scratch) and its reply marshal buffer per request; a streaming client
// at CODEC rates turns that into a steady allocation drizzle. The pools
// make the steady state allocation-free: buffers are checked out for the
// life of one request (or one queued message) and returned as soon as
// their bytes have been copied onward.
//
// Pools hold *[]T rather than []T so checkout/checkin does not itself
// allocate a slice-header box per operation.
var (
	bytePool = sync.Pool{New: func() any { return new([]byte) }}
	linPool  = sync.Pool{New: func() any { return new([]int16) }}
	msgPool  = sync.Pool{New: func() any { return new([]byte) }}
	reqPool  = sync.Pool{New: func() any { return new([]byte) }}
)

// getBytes checks out a []byte of length n.
func getBytes(n int) *[]byte {
	p := bytePool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putBytes(p *[]byte) { bytePool.Put(p) }

// getLin checks out an []int16 of length n.
func getLin(n int) *[]int16 {
	p := linPool.Get().(*[]int16)
	if cap(*p) < n {
		*p = make([]int16, n)
	}
	*p = (*p)[:n]
	return p
}

func putLin(p *[]int16) { linPool.Put(p) }

// getMsg checks out an empty marshal buffer for one outgoing message.
// The writer goroutine returns it to the pool after the bytes reach the
// connection's bufio layer.
func getMsg() *[]byte {
	p := msgPool.Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

func putMsg(p *[]byte) { msgPool.Put(p) }

// msgBytes grows a checked-out message buffer to exactly n bytes and
// returns it. The record path sizes its reply message up front and lets
// the device convert samples straight into the payload region.
func msgBytes(p *[]byte, n int) []byte {
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return *p
}

// getReqFrame checks out a request-body buffer of length n for the
// reader's ingress path. The frame is returned as soon as the request
// has been dispatched — or, for a request that blocked, when its park
// completes, since the parked state aliases the frame until then.
func getReqFrame(n int) *[]byte {
	p := reqPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putReqFrame(p *[]byte) { reqPool.Put(p) }
