package aserver

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Staging pools for the dispatch hot path. Every play and record request
// used to allocate its staging (record destination, ADPCM decompression
// scratch) and its reply marshal buffer per request; a streaming client
// at CODEC rates turns that into a steady allocation drizzle. The pools
// make the steady state allocation-free: buffers are checked out for the
// life of one request (or one queued message) and returned as soon as
// their bytes have been copied onward.
//
// Pools hold *[]T rather than []T so checkout/checkin does not itself
// allocate a slice-header box per operation.
var (
	bytePool = sync.Pool{New: func() any { return new([]byte) }}
	linPool  = sync.Pool{New: func() any { return new([]int16) }}
	msgPool  = sync.Pool{New: func() any { return new(wireMsg) }}
	reqPool  = sync.Pool{New: func() any { return new([]byte) }}
)

// wireMsg is one pooled outgoing wire message. Unicast replies, errors,
// and events are checked out with one reference and released by the
// writer after the bytes reach the kernel — the historical lifecycle.
// Broadcast fan-out shares one message across N subscriber queues:
// the channel pump retains N-1 extra references before enqueueing, each
// subscriber's writer (or teardown sweep) releases one, and the last
// release returns the buffer to the pool. The payload bytes are
// immutable from the moment the message is enqueued anywhere.
//
// owner is a static tag naming the checkout site; it travels with the
// message so a double release (a sharing bug that would otherwise
// surface as silent pool corruption — two clients writev-ing the same
// buffer while a third path reuses it) panics with context instead.
type wireMsg struct {
	buf   []byte
	refs  atomic.Int32
	owner string
}

// retain adds n references; the caller already holds at least one, so
// the count can never be observed at zero while retaining.
func (m *wireMsg) retain(n int32) {
	if n > 0 {
		m.refs.Add(n)
	}
}

// release drops one reference; the last one returns the message to the
// pool. Releasing more times than the message was retained is a
// refcounting bug in the caller, not a recoverable condition: the buffer
// may already be carrying someone else's bytes, so corruption is certain
// and we crash loudly with the checkout site instead.
func (m *wireMsg) release() {
	switch n := m.refs.Add(-1); {
	case n == 0:
		msgPool.Put(m)
	case n < 0:
		panic(fmt.Sprintf("aserver: wireMsg double release (owner %q, refs %d)", m.owner, n))
	}
}

// getBytes checks out a []byte of length n.
func getBytes(n int) *[]byte {
	p := bytePool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putBytes(p *[]byte) { bytePool.Put(p) }

// getLin checks out an []int16 of length n.
func getLin(n int) *[]int16 {
	p := linPool.Get().(*[]int16)
	if cap(*p) < n {
		*p = make([]int16, n)
	}
	*p = (*p)[:n]
	return p
}

func putLin(p *[]int16) { linPool.Put(p) }

// getMsg checks out an empty wire message holding one reference, tagged
// with the checkout site for the double-release guard. The reference is
// consumed by the writer goroutine (or a failed send) via release.
func getMsg(owner string) *wireMsg {
	m := msgPool.Get().(*wireMsg)
	m.buf = m.buf[:0]
	m.refs.Store(1)
	m.owner = owner
	return m
}

// msgBytes grows a checked-out message buffer to exactly n bytes and
// returns it. The record path sizes its reply message up front and lets
// the device convert samples straight into the payload region.
func msgBytes(m *wireMsg, n int) []byte {
	if cap(m.buf) < n {
		m.buf = make([]byte, n)
	}
	m.buf = m.buf[:n]
	return m.buf
}

// getReqFrame checks out a request-body buffer of length n for the
// reader's ingress path. The frame is returned as soon as the request
// has been dispatched — or, for a request that blocked, when its park
// completes, since the parked state aliases the frame until then.
func getReqFrame(n int) *[]byte {
	p := reqPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putReqFrame(p *[]byte) { reqPool.Put(p) }
