package aserver

import (
	"strings"
	"sync"
	"testing"
)

// The refcounted wire message is the sharing primitive under broadcast
// fan-out: these tests pin its lifecycle rules so a refcounting bug
// surfaces as a loud panic in CI, not as pool corruption (two clients
// writev-ing a buffer a third path already reused).

func TestWireMsgLifecycle(t *testing.T) {
	m := getMsg("test")
	if got := m.refs.Load(); got != 1 {
		t.Fatalf("fresh message refs = %d, want 1", got)
	}
	if len(m.buf) != 0 {
		t.Fatalf("fresh message buf len = %d, want 0", len(m.buf))
	}
	msgBytes(m, 64)
	if len(m.buf) != 64 {
		t.Fatalf("msgBytes len = %d, want 64", len(m.buf))
	}
	m.retain(2) // simulate fan-out to 3 subscribers total
	for i := 0; i < 3; i++ {
		m.release()
	}
	// The message is back in the pool now; a fresh checkout must start
	// with exactly one reference regardless of history.
	m2 := getMsg("test2")
	if got := m2.refs.Load(); got != 1 {
		t.Fatalf("recycled message refs = %d, want 1", got)
	}
	m2.release()
}

func TestWireMsgRetainZeroIsNoop(t *testing.T) {
	m := getMsg("test")
	m.retain(0) // a broadcast group with a single subscriber retains nothing
	if got := m.refs.Load(); got != 1 {
		t.Fatalf("refs after retain(0) = %d, want 1", got)
	}
	m.release()
}

func TestWireMsgDoubleReleasePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double release") || !strings.Contains(msg, "owner-tag") {
			t.Fatalf("panic lacks owner context: %v", r)
		}
	}()
	// Not checked out via getMsg: a pooled message that double-releases
	// would poison the pool for an unrelated checkout, so the guard must
	// fire on the raw object before it ever reaches the pool.
	m := &wireMsg{owner: "owner-tag"}
	m.refs.Store(1)
	m.release()
	m.release()
}

// TestWireMsgConcurrentRelease exercises the release race under -race:
// many goroutines share one message, each releasing its own reference;
// the count must land exactly at zero with no guard trip.
func TestWireMsgConcurrentRelease(t *testing.T) {
	const sharers = 64
	m := &wireMsg{owner: "concurrent"}
	m.refs.Store(1)
	m.retain(sharers - 1)
	var wg sync.WaitGroup
	for i := 0; i < sharers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.release()
		}()
	}
	wg.Wait()
	if got := m.refs.Load(); got != 0 {
		t.Fatalf("refs after concurrent release = %d, want 0", got)
	}
}
