package aserver

import (
	"math"
	"sync/atomic"
	"time"

	"audiofile/internal/proto"
)

// Overload protection and graceful degradation: the policies that keep
// the real-time data plane healthy no matter what clients do. Three
// layers (see DESIGN.md, "Overload & shutdown"):
//
//   - Per-connection: every client's outgoing queue is bounded in bytes
//     (not just messages). A consumer that stays over its byte budget —
//     or misses a write deadline — for longer than the audio it is owed
//     is evicted with a typed protocol error (Overload). Senders never
//     block: the engine and the other clients' writers are unaffected.
//   - Server-wide: budgets on client count, total queued bytes, and
//     pooled request-frame bytes in flight. Exceeding one sheds the
//     oldest-idle (or largest-queue) client rather than degrading all.
//   - Shutdown: Drain stops accepting, lets play rings flush to the
//     device tail and parks resolve, then disconnects the remaining
//     clients with a typed Drain error and closes.
//
// Every disconnect is classified exactly once, so the counters obey
//
//	disconnects == evictions + sheds + drains + client closes
//
// after drain (<= at any instant; see closeCounterFor for the ordering
// that makes the inequality hold in every live snapshot).

// Close reasons recorded at eviction time and classified into counters
// by removeClient. Zero (the default) means the client went away on its
// own: transport EOF, protocol error, or KillClient.
const (
	closeReasonClient uint32 = iota
	closeReasonEvict         // over send budget or missed write deadline
	closeReasonShed          // sacrificed to a server-wide budget
	closeReasonDrain         // graceful shutdown
)

// flowVerdict is the eviction policy's answer for one observation.
type flowVerdict uint8

const (
	flowOK    flowVerdict = iota // under budget
	flowOver                     // over budget, inside the allowance
	flowEvict                    // over budget past the allowance
)

// evictPolicy is the per-client slow-consumer state machine. A client
// may exceed its byte budget transiently (a burst the writer is still
// flushing); it is evicted only after staying over budget for longer
// than its allowance: a fixed grace period plus, when rate is set, the
// time the queued audio itself is worth — "the audio it is owed".
//
// The state is one atomic (the instant the client went over budget), so
// both the send hot path and the periodic sweep can run the policy
// without a lock.
type evictPolicy struct {
	budget int64         // queued-bytes budget
	grace  time.Duration // fixed slack once over budget
	rate   int64         // consumer bytes/sec the queue is owed; 0 disables

	overSince atomic.Int64 // unix nanos when the budget was crossed; 0 = under
}

// allowance is how long a client may stay over budget with `queued`
// bytes outstanding.
func (p *evictPolicy) allowance(queued int64) time.Duration {
	d := p.grace
	if p.rate > 0 {
		d += time.Duration(queued * int64(time.Second) / p.rate)
	}
	return d
}

// onQueue observes the queued-byte level at time now (unix nanos) and
// returns the verdict. Called on over-budget enqueues and by the sweep.
func (p *evictPolicy) onQueue(queued, now int64) flowVerdict {
	if queued <= p.budget {
		p.overSince.Store(0)
		return flowOK
	}
	since := p.overSince.Load()
	if since == 0 {
		// First observation over budget starts the clock. CAS so racing
		// observers agree on one start time.
		p.overSince.CompareAndSwap(0, now)
		return flowOver
	}
	if time.Duration(now-since) > p.allowance(queued) {
		return flowEvict
	}
	return flowOver
}

// onDrain observes the queued-byte level after the writer flushed. A
// client back under budget has recovered: the clock resets, and a later
// excursion starts a fresh allowance.
func (p *evictPolicy) onDrain(queued int64) {
	if queued <= p.budget && p.overSince.Load() != 0 {
		p.overSince.Store(0)
	}
}

// writeAllowance returns how long an over-budget client's next flush
// may take before it counts as a missed deadline: the remainder of the
// policy allowance, floored so a deadline armed late still permits a
// write. Reports false while under budget (no deadline armed — the
// common case stays free of timer churn).
func (p *evictPolicy) writeAllowance(queued, now int64) (time.Duration, bool) {
	since := p.overSince.Load()
	if since == 0 {
		return 0, false
	}
	rem := p.allowance(queued) - time.Duration(now-since)
	if rem < 5*time.Millisecond {
		rem = 5 * time.Millisecond
	}
	return rem, true
}

// budgets is the server-wide resource policy, resolved from Options.
type budgets struct {
	maxClients   int           // registered clients before oldest-idle shedding; 0 = unlimited
	clientQueue  int64         // per-client queued-bytes budget
	serverQueue  int64         // total queued bytes across clients
	frameCeiling int64         // pooled request-frame bytes in flight
	evictGrace   time.Duration // fixed over-budget slack
	evictRate    int64         // bytes/sec for the owed-audio allowance term
}

// initOverload resolves the budget options and seeds the periodic
// overload sweep. Called from New before the loop starts.
func (s *Server) initOverload() {
	b := &s.budget
	b.maxClients = s.opts.MaxClients
	b.clientQueue = int64(s.opts.ClientQueueBytes)
	if b.clientQueue == 0 {
		b.clientQueue = 256 << 10
	}
	if b.clientQueue < 0 {
		b.clientQueue = math.MaxInt64
	}
	b.evictGrace = s.opts.EvictGrace
	if b.evictGrace == 0 {
		b.evictGrace = 250 * time.Millisecond
	}
	b.evictRate = int64(s.opts.EvictRateBytesPerSec)
	b.serverQueue = s.opts.ServerQueueBytes
	if b.serverQueue == 0 {
		if b.clientQueue > math.MaxInt64/64 {
			b.serverQueue = math.MaxInt64
		} else {
			b.serverQueue = 64 * b.clientQueue
		}
	}
	if b.serverQueue < 0 {
		b.serverQueue = math.MaxInt64
	}
	b.frameCeiling = s.opts.FrameBytesCeiling
	if b.frameCeiling == 0 {
		b.frameCeiling = 16 << 20
	}
	if b.frameCeiling < 0 {
		b.frameCeiling = math.MaxInt64
	}
	// The sweep is the time-based half of the eviction policy: send()
	// catches a client crossing its budget, the sweep catches one that
	// sits over budget while nothing new is being queued (its writer
	// wedged behind a transport that stopped draining). Half the grace
	// period bounds how far past its allowance a silent client can live.
	interval := b.evictGrace / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	var sweep func(now time.Time)
	sweep = func(now time.Time) {
		s.sweepOverload(now)
		s.tasks.add(now.Add(interval), sweep)
	}
	s.tasks.add(time.Now().Add(interval), sweep)
}

// sweepOverload runs the eviction policy over every live client and
// enforces the server-wide budgets. Runs on the control plane's task
// queue.
func (s *Server) sweepOverload(now time.Time) {
	nanos := now.UnixNano()
	var largest *client
	var largestBytes int64
	var total int64
	s.clientMu.RLock()
	for c := range s.clients {
		if c.dead.Load() {
			continue
		}
		q := c.queuedBytes.Load()
		total += q
		if q > largestBytes {
			largest, largestBytes = c, q
		}
		if q > c.flow.budget && c.flow.onQueue(q, nanos) == flowEvict {
			s.logf("aserver: client %v over send budget (%d bytes) past its allowance, evicting",
				c.conn.RemoteAddr(), q)
			c.evict(closeReasonEvict, proto.ErrOverload)
		}
	}
	s.clientMu.RUnlock()
	// Server-wide queued bytes: shed the largest queue rather than let
	// one burst starve every writer of pooled buffers.
	if total > s.budget.serverQueue && largest != nil && !largest.dead.Load() {
		s.logf("aserver: %d bytes queued server-wide (budget %d), shedding client %v (%d bytes)",
			total, s.budget.serverQueue, largest.conn.RemoteAddr(), largestBytes)
		largest.evict(closeReasonShed, proto.ErrOverload)
	}
	// Pooled ingress frames in flight: a parked-request pileup holding
	// frames past the ceiling sheds the oldest-idle client.
	if s.sm.frameBytes.Load() > s.budget.frameCeiling {
		s.shedOldestIdle(nil)
	}
}

// shedOldestIdle evicts the live client with the oldest last-dispatched
// request (excluding exclude), reporting whether a candidate was found.
func (s *Server) shedOldestIdle(exclude *client) bool {
	var victim *client
	var oldest int64 = math.MaxInt64
	s.clientMu.RLock()
	for c := range s.clients {
		if c == exclude || c.dead.Load() {
			continue
		}
		if t := c.lastActive.Load(); t < oldest {
			victim, oldest = c, t
		}
	}
	s.clientMu.RUnlock()
	if victim == nil {
		return false
	}
	s.logf("aserver: server over budget, shedding oldest-idle client %v", victim.conn.RemoteAddr())
	victim.evict(closeReasonShed, proto.ErrOverload)
	return true
}

// getFrame / putFrame wrap the request-frame pool with the in-flight
// byte gauge, so the pooled-frame ceiling and the soak test's memory
// assertion see every frame the ingress path has checked out. One
// atomic add on top of the pool op keeps the hot path allocation-free.
func (s *Server) getFrame(n int) *[]byte {
	s.sm.frameBytes.Add(int64(n))
	return getReqFrame(n)
}

func (s *Server) putFrame(p *[]byte) {
	s.sm.frameBytes.Add(-int64(len(*p)))
	putReqFrame(p)
}

// Drain performs a graceful shutdown: stop accepting new connections,
// let the data plane run until every play ring has been consumed to the
// device tail and every park has resolved (or timeout passes), then
// disconnect the remaining clients with a typed Drain error and Close.
// Calling Drain again — or after Close — just closes.
func (s *Server) Drain(timeout time.Duration) {
	if !s.draining.CompareAndSwap(false, true) {
		s.Close()
		return
	}
	s.mu.Lock()
	ls := s.listeners
	s.listeners = nil
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	for _, l := range ls {
		l.Close()
	}
	// The drain watch rides the update scheduler: a wheel timer polls
	// drained() on the worker pool until the data plane is empty or the
	// window closes — no dedicated sleep loop.
	s.sched.pollUntil(2*time.Millisecond, time.Now().Add(timeout), s.drained)
	s.clientMu.RLock()
	cs := make([]*client, 0, len(s.clients))
	for c := range s.clients {
		cs = append(cs, c)
	}
	s.clientMu.RUnlock()
	for _, c := range cs {
		c.evict(closeReasonDrain, proto.ErrDrain)
	}
	s.Close()
}

// drained reports whether every engine's play ring has been consumed to
// the device tail and no parks are outstanding. Parks that cannot
// resolve inside the drain window are discarded deterministically by the
// engines' shutdown path in Close.
func (s *Server) drained() bool {
	for _, e := range s.engines {
		e.mu.Lock()
		ok := len(e.parks) == 0 && e.root.PendingPlayFrames() == 0
		e.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}
