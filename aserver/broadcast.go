package aserver

import (
	"encoding/binary"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// Broadcast channels: the encode-once fan-out path.
//
// A channel is a device's final play mix, tapped server-side and pushed
// to every subscribed client. The defining property is that the work of
// producing the wire bytes is independent of the listener count: each
// pump cycle cuts one chunk per channel, encodes it once per distinct
// wire format into a pooled refcounted message, and enqueues the same
// message on every subscriber's output queue. A listener costs one
// enqueue and one writev iovec entry per chunk — no copy, no re-encode.
//
// All broadcast state hangs off the owning engine and is guarded by
// e.mu, like every other per-device structure. The pump runs inside
// updateLocked, so it is serialized with plays, records, and patches on
// the same device; it never blocks on a subscriber (send is non-blocking
// and a slow listener is handled by the ordinary overload machinery).
//
// Lock ordering is unchanged: subscribe/unsubscribe and the pump take
// only e.mu; the enqueue path (client.send) takes no locks at all.

// maxBroadcastChunkFrames bounds a single broadcast message's payload.
// A backlog larger than this is cut into several messages rather than
// one huge writev entry; at the largest frame size (stereo lin32) this
// is a 32 KiB payload, far under proto.MaxReplyExtraBytes.
const maxBroadcastChunkFrames = 4096

// bsub is one subscription: a client listening to a channel through an
// audio context. The ac pins the format; the client owns the queue.
type bsub struct {
	c *client
	a *ac
}

// bgroup is the unit of encoding: all subscribers of one device that
// share a wire format (sample encoding + client byte order). The chunk
// is encoded once per group and fanned out by reference; the group also
// owns the per-channel sequence counter those subscribers observe.
//
// The byte order is part of the key because the shared message includes
// the 16-byte header, which the client parses in its connection's order
// — two µ-law listeners with opposite orders need identical payloads but
// different headers, hence different groups.
type bgroup struct {
	dev   *core.Device
	enc   sampleconv.Encoding
	order binary.ByteOrder
	be    bool // swap payload bytes (big-endian client, multi-byte samples)
	vfb   int  // payload bytes per frame (enc × channel count)
	seq   uint16
	subs  []*bsub
}

// bchannel is an engine's broadcast state: the groups sharing the
// engine's devices and the single consumption cursor. One cursor
// suffices because every device on an engine (root and views) shares
// the root's clock.
type bchannel struct {
	taken  atime.ATime // mix consumed through here, all groups
	groups []*bgroup
	nsubs  int
}

// subscribeLocked attaches c's audio context a to its device's broadcast
// channel. Returns a proto.Err* code, or 0 on success. Caller holds e.mu.
func (e *engine) subscribeLocked(c *client, a *ac) uint8 {
	if a.subscribed {
		return proto.ErrValue
	}
	// A stateful coder cannot be shared across listeners: ADPCM contexts
	// cannot subscribe.
	if a.enc == sampleconv.ADPCM4 {
		return proto.ErrMatch
	}
	// One subscription per device per connection: broadcasts are routed
	// client-side by channel (device index), so a second subscription on
	// the same device would be indistinguishable from the first.
	for _, g := range e.bcast.groups {
		if g.dev != a.dev {
			continue
		}
		for _, sb := range g.subs {
			if sb.c == c {
				return proto.ErrValue
			}
		}
	}
	if e.bcast.nsubs == 0 {
		// First listener on this engine: the channel starts consuming the
		// mix from now. (A later subscriber joins mid-stream at the next
		// chunk boundary.)
		e.bcast.taken = e.root.Now()
	}
	be := c.order == binary.BigEndian && a.enc.BytesPerSamples(1) > 1
	var g *bgroup
	for _, cand := range e.bcast.groups {
		if cand.dev == a.dev && cand.enc == a.enc && cand.order == c.order {
			g = cand
			break
		}
	}
	if g == nil {
		g = &bgroup{dev: a.dev, enc: a.enc, order: c.order, be: be,
			vfb: a.clientFrameBytes()}
		e.bcast.groups = append(e.bcast.groups, g)
	}
	g.subs = append(g.subs, &bsub{c: c, a: a})
	a.subscribed = true
	e.bcast.nsubs++
	e.m.bcastSubs.Add(1)
	return 0
}

// unsubscribeLocked detaches a from its channel. Idempotent: a context
// that is not subscribed (or was already dropped by the pump's dead-sub
// sweep) is a no-op. Caller holds e.mu.
func (e *engine) unsubscribeLocked(a *ac) {
	if !a.subscribed {
		return
	}
	a.subscribed = false
	for gi, g := range e.bcast.groups {
		if g.dev != a.dev {
			continue
		}
		for si, sb := range g.subs {
			if sb.a == a {
				e.removeSubLocked(gi, si)
				return
			}
		}
	}
}

// dropClientSubs discards every subscription the client holds on this
// engine. Called by the control plane when a client unregisters (the
// broadcast analogue of dropClientParks).
func (e *engine) dropClientSubs(c *client) {
	e.mu.Lock()
	gi := 0
	for gi < len(e.bcast.groups) {
		g := e.bcast.groups[gi]
		for si := 0; si < len(g.subs); {
			if g.subs[si].c == c {
				g.subs[si].a.subscribed = false
				e.removeSubLocked(gi, si) // may remove g itself
			} else {
				si++
			}
		}
		// Swap-removal moves the tail group into gi when g empties, so
		// only advance while gi still holds the group just processed.
		if gi < len(e.bcast.groups) && e.bcast.groups[gi] == g {
			gi++
		}
	}
	e.mu.Unlock()
}

// removeSubLocked deletes subscriber si from group gi, dropping the
// group when it empties. Caller holds e.mu.
func (e *engine) removeSubLocked(gi, si int) {
	g := e.bcast.groups[gi]
	g.subs[si] = g.subs[len(g.subs)-1]
	g.subs[len(g.subs)-1] = nil
	g.subs = g.subs[:len(g.subs)-1]
	if len(g.subs) == 0 {
		e.bcast.groups[gi] = e.bcast.groups[len(e.bcast.groups)-1]
		e.bcast.groups[len(e.bcast.groups)-1] = nil
		e.bcast.groups = e.bcast.groups[:len(e.bcast.groups)-1]
	}
	e.bcast.nsubs--
	e.m.bcastSubs.Add(-1)
}

// pumpBroadcast advances the channel cursor to the device's current time
// and emits the elapsed mix as broadcast chunks. Runs from updateLocked
// (caller holds e.mu) after the device update, so the play buffer is
// settled through "now".
func (e *engine) pumpBroadcast() {
	b := &e.bcast
	if len(b.groups) == 0 {
		return
	}
	now := e.root.Now()
	span := int(atime.Sub(now, b.taken))
	// Backlog clamp: if the pump fell behind by more than half the buffer
	// (a stalled scheduler, a manual clock jumped far forward), skip
	// ahead rather than flood every queue with stale audio. Subscribers
	// see contiguous sequence numbers with a Time jump.
	if max := e.root.BufFrames() / 2; span > max {
		b.taken = atime.Add(now, -max)
		span = max
	}
	// Chunks are cut on 4-frame boundaries so every payload is a whole
	// number of 32-bit units at any frame size (1, 2, 4 or 8 bytes); the
	// sub-chunk remainder carries into the next pump.
	span &^= 3
	for span > 0 && len(b.groups) > 0 {
		n := span
		if n > maxBroadcastChunkFrames {
			n = maxBroadcastChunkFrames
		}
		e.emitChunkLocked(b.taken, n)
		b.taken = atime.Add(b.taken, n)
		span -= n
	}
}

// emitChunkLocked encodes the mix region [start, start+nframes) once per
// group and enqueues the resulting message on every subscriber in the
// group. Caller holds e.mu.
func (e *engine) emitChunkLocked(start atime.ATime, nframes int) {
	gi := 0
	encoded := false
	for gi < len(e.bcast.groups) {
		g := e.bcast.groups[gi]
		// Sweep dead subscribers first so a group kept alive only by a
		// torn-down client does not pay for an encode.
		for si := 0; si < len(g.subs); {
			if g.subs[si].c.dead.Load() {
				g.subs[si].a.subscribed = false
				e.removeSubLocked(gi, si)
			} else {
				si++
			}
		}
		if gi == len(e.bcast.groups) || e.bcast.groups[gi] != g {
			continue // group vanished with its last dead subscriber
		}
		m := getMsg("broadcast")
		buf := msgBytes(m, proto.BroadcastHeaderBytes+nframes*g.vfb)
		payload := buf[proto.BroadcastHeaderBytes:]
		g.dev.TapMix(start, payload, g.enc, 0)
		if g.be {
			sampleconv.SwapBytes(g.enc, payload)
		}
		bd := proto.BroadcastData{
			Enc:           uint8(g.enc),
			BigEndianData: g.be,
			Seq:           g.seq,
			Time:          uint32(start),
			Channel:       uint32(g.dev.Index),
		}
		proto.PutBroadcastHeader(g.order, buf, &bd, len(payload))
		g.seq++
		e.m.bcastEncodes.Inc()
		encoded = true
		// The encode is done: hand one reference per subscriber to the
		// send path. A failed send (dead client, hard queue cap) releases
		// its own reference, so the count balances whatever happens.
		m.retain(int32(len(g.subs) - 1))
		sent := 0
		for _, sb := range g.subs {
			if sb.c.send(m) {
				sent++
			}
		}
		e.m.bcastMsgs.Add(uint64(sent))
		e.m.bcastBytes.Add(uint64(sent * len(buf)))
		e.m.bcastDrops.Add(uint64(len(g.subs) - sent))
		gi++
	}
	// A time-slice counts as a chunk only if some live group consumed it:
	// this keeps the conservation law (encodes >= chunks, with equality
	// per live format) exact even when the dead-subscriber sweep empties
	// the channel mid-span.
	if encoded {
		e.m.bcastChunks.Inc()
	}
}
