package aserver

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestTaskQueueProperty is the property test the wheel migration must
// preserve: for any schedule of tasks, execution order is sorted by
// deadline with same-deadline ties broken FIFO (insertion order), no
// task runs before its deadline, and every task due at a tick runs at
// that tick.
func TestTaskQueueProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		q := newTaskQueue()
		base := time.Unix(0, 0)
		type rec struct {
			when time.Time
			seq  int
		}
		var expect []rec
		var got []rec
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			// Coarse deadline buckets force plenty of exact ties.
			when := base.Add(time.Duration(rng.Intn(8)) * time.Millisecond)
			r := rec{when: when, seq: i}
			expect = append(expect, r)
			q.add(when, func(now time.Time) {
				if now.Before(r.when) {
					t.Fatalf("trial %d: task due %v ran early at %v", trial, r.when, now)
				}
				got = append(got, r)
			})
		}
		// Drive the queue in random tick steps until empty.
		now := base
		for {
			if _, ok := q.next(); !ok {
				break
			}
			now = now.Add(time.Duration(1+rng.Intn(3)) * time.Millisecond)
			q.runDue(now)
		}
		sort.SliceStable(expect, func(i, j int) bool {
			return expect[i].when.Before(expect[j].when)
		})
		if len(got) != len(expect) {
			t.Fatalf("trial %d: ran %d tasks, want %d", trial, len(got), len(expect))
		}
		for i := range got {
			if !got[i].when.Equal(expect[i].when) || got[i].seq != expect[i].seq {
				t.Fatalf("trial %d: position %d ran (when=%v seq=%d), want (when=%v seq=%d)",
					trial, i, got[i].when, got[i].seq, expect[i].when, expect[i].seq)
			}
		}
	}
}

// TestTaskQueueSameDeadlineFIFO pins the tiebreak directly: tasks added
// with an identical deadline run in insertion order.
func TestTaskQueueSameDeadlineFIFO(t *testing.T) {
	q := newTaskQueue()
	when := time.Unix(1, 0)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		q.add(when, func(time.Time) { order = append(order, i) })
	}
	q.runDue(when)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline order[%d] = %d; ties must run FIFO", i, v)
		}
	}
}

// TestTaskQueueRearmUnderLoad models the periodic update under load: a
// re-arming task scheduled from the tick's own now must keep an exact
// cadence (no period stretch when ticks fire late) while bursts of
// one-shot tasks come and go around it.
func TestTaskQueueRearmUnderLoad(t *testing.T) {
	q := newTaskQueue()
	base := time.Unix(0, 0)
	interval := 10 * time.Millisecond
	var fires []time.Time
	var tick func(now time.Time)
	tick = func(now time.Time) {
		fires = append(fires, now)
		q.add(now.Add(interval), tick)
	}
	q.add(base.Add(interval), tick)
	oneshots := 0
	rng := rand.New(rand.NewSource(7))
	// Ticks arrive late and unevenly (a loaded scheduler); the re-arm
	// is computed from the driving now, so cadence is preserved.
	now := base
	for i := 0; i < 50; i++ {
		now = now.Add(interval + time.Duration(rng.Intn(5))*time.Millisecond)
		for j := rng.Intn(4); j > 0; j-- {
			q.add(now.Add(time.Duration(rng.Intn(20))*time.Millisecond),
				func(time.Time) { oneshots++ })
		}
		q.runDue(now)
	}
	if len(fires) < 50 {
		t.Fatalf("periodic task fired %d times over 50 ticks", len(fires))
	}
	// Every fire re-armed interval after the tick that ran it; a due
	// re-arm is never skipped: consecutive fires are ≤ one tick apart.
	for i := 1; i < len(fires); i++ {
		if d := fires[i].Sub(fires[i-1]); d < interval {
			t.Fatalf("fires %d and %d only %v apart, want >= %v", i-1, i, d, interval)
		}
	}
	if oneshots == 0 {
		t.Fatal("no one-shot tasks ran")
	}
}
