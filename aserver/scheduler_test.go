package aserver

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"audiofile/internal/vdev"
)

// manyCodecs builds n manual-clock CODEC device specs (no real-time
// clocks, so the fleet is cheap to host in a test).
func manyCodecs(n int) []DeviceSpec {
	specs := make([]DeviceSpec, n)
	for i := range specs {
		specs[i] = DeviceSpec{
			Kind:  "codec",
			Name:  fmt.Sprintf("codec%d", i),
			Clock: vdev.NewManualClock(8000),
		}
	}
	return specs
}

// TestUpdatePlaneGoroutineInventory is the tentpole's headline claim:
// hosting 1024 devices must cost O(shards + workers) resident
// goroutines, not one per device. The old design ran engine.run() per
// engine — 1024 goroutines here; the wheel/scheduler runs shard loops
// plus the bounded worker pool plus the control loop.
func TestUpdatePlaneGoroutineInventory(t *testing.T) {
	const devs = 1024
	runtime.GC()
	before := runtime.NumGoroutine()
	s, err := New(Options{
		Devices: manyCodecs(devs),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	after := runtime.NumGoroutine()
	delta := after - before
	budget := s.sched.wheel.Shards() + s.sched.workers + 8 // control loop + runtime slack
	if delta > budget {
		t.Fatalf("hosting %d devices added %d goroutines, budget %d (shards=%d workers=%d)",
			devs, delta, budget, s.sched.wheel.Shards(), s.sched.workers)
	}
	if delta >= devs {
		t.Fatalf("goroutine count grew with device count: +%d for %d devices", delta, devs)
	}
}

// TestSchedulerRunsUpdates checks the wheel actually drives the periodic
// update pump: engines get serviced by workers at their cadence and the
// scheduler accounting moves.
func TestSchedulerRunsUpdates(t *testing.T) {
	s, err := New(Options{
		Devices: manyCodecs(4),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Codec interval is min(100ms, hwDur/2) = 64ms; 500ms covers several
	// ticks for all four engines even on a loaded CI machine.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.SchedEngineRuns >= 8 && snap.SchedTickLagNs.Count >= 8 {
			if snap.SchedOverdueTasks < 0 {
				t.Fatalf("sched.overdue_tasks gauge went negative: %d", snap.SchedOverdueTasks)
			}
			if snap.SchedWorkersBusy < 0 {
				t.Fatalf("sched.workers_busy gauge went negative: %d", snap.SchedWorkersBusy)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler barely ran: engine_runs=%d tick_lag_count=%d",
				snap.SchedEngineRuns, snap.SchedTickLagNs.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAddTaskLockedPromotes checks the wake-channel replacement: a task
// scheduled well before the engine's next periodic tick must promote the
// wheel timer and run near its own deadline, not wait out the tick.
func TestAddTaskLockedPromotes(t *testing.T) {
	s, err := New(Options{
		Devices: manyCodecs(1),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.engines[0]
	ran := make(chan time.Time, 1)
	start := time.Now()
	e.mu.Lock()
	// The periodic tick is 64ms out; this must not wait for it.
	e.addTaskLocked(5*time.Millisecond, func(now time.Time) {
		select {
		case ran <- now:
		default:
		}
	})
	e.mu.Unlock()
	select {
	case <-ran:
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Fatalf("promoted 5ms task ran after %v; promotion is not reaching the wheel", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("promoted task never ran")
	}
}
