package aserver

import (
	"container/heap"
	"time"
)

// The task mechanism (§7.3.1): procedures scheduled for execution at
// future times, outside the main flow of control. The server's update
// mechanism and the dispatcher's resumption of partially completed
// (blocked) client requests both ride on it. Engine task queues are run
// by the update scheduler's workers under the engine lock; the control
// plane's queue is run by the server loop.
//
// A task function receives the time its tick was driven by, so
// re-arming tasks (the periodic updates, the overload sweep) schedule
// their next run relative to that instant instead of calling time.Now()
// again: one clock read per tick, and a tick that fires late does not
// silently stretch the period.

type task struct {
	when time.Time
	seq  uint64 // insertion order; breaks same-deadline ties FIFO
	fn   func(now time.Time)
}

type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

type taskQueue struct {
	h   taskHeap
	seq uint64
}

func newTaskQueue() *taskQueue { return &taskQueue{} }

// add schedules fn to run at (or soon after) when. Tasks with equal
// deadlines run in the order they were added.
func (q *taskQueue) add(when time.Time, fn func(now time.Time)) {
	q.seq++
	heap.Push(&q.h, task{when: when, seq: q.seq, fn: fn})
}

// addAfter schedules fn after a delay from now, the AddTask(proc, task,
// ms) idiom. now is the caller's already-read clock, not re-sampled.
func (q *taskQueue) addAfter(now time.Time, d time.Duration, fn func(now time.Time)) {
	q.add(now.Add(d), fn)
}

// next returns the earliest deadline, or false if the queue is empty.
func (q *taskQueue) next() (time.Time, bool) {
	if len(q.h) == 0 {
		return time.Time{}, false
	}
	return q.h[0].when, true
}

// runDue executes every task due at now and returns how many ran. Tasks
// may reschedule themselves (the periodic update tasks do); each fn
// receives now so re-arms are computed from the tick that ran them.
func (q *taskQueue) runDue(now time.Time) int {
	n := 0
	for len(q.h) > 0 && !q.h[0].when.After(now) {
		t := heap.Pop(&q.h).(task)
		t.fn(now)
		n++
	}
	return n
}
