package aserver

import (
	"container/heap"
	"time"
)

// The task mechanism (§7.3.1): procedures scheduled for execution at
// future times, outside the main flow of control. The server's update
// mechanism and the dispatcher's resumption of partially completed
// (blocked) client requests both ride on it. Tasks run only inside the
// server loop.

type task struct {
	when time.Time
	fn   func()
}

type taskHeap []task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

type taskQueue struct {
	h taskHeap
}

func newTaskQueue() *taskQueue { return &taskQueue{} }

// add schedules fn to run at (or soon after) when.
func (q *taskQueue) add(when time.Time, fn func()) {
	heap.Push(&q.h, task{when: when, fn: fn})
}

// addAfter schedules fn after a delay, the AddTask(proc, task, ms) idiom.
func (q *taskQueue) addAfter(d time.Duration, fn func()) {
	q.add(time.Now().Add(d), fn)
}

// next returns the earliest deadline, or false if the queue is empty.
func (q *taskQueue) next() (time.Time, bool) {
	if len(q.h) == 0 {
		return time.Time{}, false
	}
	return q.h[0].when, true
}

// runDue executes every task due at now and returns how many ran. Tasks
// may reschedule themselves (the periodic update tasks do).
func (q *taskQueue) runDue(now time.Time) int {
	n := 0
	for len(q.h) > 0 && !q.h[0].when.After(now) {
		t := heap.Pop(&q.h).(task)
		t.fn()
		n++
	}
	return n
}
