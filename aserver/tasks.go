package aserver

import (
	"time"
)

// The task mechanism (§7.3.1): procedures scheduled for execution at
// future times, outside the main flow of control. The server's update
// mechanism and the dispatcher's resumption of partially completed
// (blocked) client requests both ride on it. Engine task queues are run
// by the update scheduler's workers under the engine lock; the control
// plane's queue is run by the server loop.
//
// A task function receives the time its tick was driven by, so
// re-arming tasks (the periodic updates, the overload sweep) schedule
// their next run relative to that instant instead of calling time.Now()
// again: one clock read per tick, and a tick that fires late does not
// silently stretch the period.
//
// The heap is hand-rolled rather than container/heap: heap.Push boxes
// every element through an interface, and task passes run on the
// scheduler's per-tick hot path, which must not allocate
// (BenchmarkUpdateScheduler's 0 allocs/op gate).

type task struct {
	when time.Time
	seq  uint64 // insertion order; breaks same-deadline ties FIFO
	fn   func(now time.Time)
}

// before is the heap order: earliest deadline first, insertion order
// within a deadline.
func (t task) before(u task) bool {
	if !t.when.Equal(u.when) {
		return t.when.Before(u.when)
	}
	return t.seq < u.seq
}

type taskQueue struct {
	h   []task
	seq uint64
}

func newTaskQueue() *taskQueue { return &taskQueue{} }

// add schedules fn to run at (or soon after) when. Tasks with equal
// deadlines run in the order they were added.
func (q *taskQueue) add(when time.Time, fn func(now time.Time)) {
	q.seq++
	q.h = append(q.h, task{when: when, seq: q.seq, fn: fn})
	// Sift up.
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// addAfter schedules fn after a delay from now, the AddTask(proc, task,
// ms) idiom. now is the caller's already-read clock, not re-sampled.
func (q *taskQueue) addAfter(now time.Time, d time.Duration, fn func(now time.Time)) {
	q.add(now.Add(d), fn)
}

// next returns the earliest deadline, or false if the queue is empty.
func (q *taskQueue) next() (time.Time, bool) {
	if len(q.h) == 0 {
		return time.Time{}, false
	}
	return q.h[0].when, true
}

// pop removes the root, clearing the vacated slot so the queue does not
// pin dead task closures.
func (q *taskQueue) pop() task {
	t := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = task{}
	q.h = q.h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.h[l].before(q.h[min]) {
			min = l
		}
		if r < n && q.h[r].before(q.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
	return t
}

// runDue executes every task due at now and returns how many ran. Tasks
// may reschedule themselves (the periodic update tasks do); each fn
// receives now so re-arms are computed from the tick that ran them.
func (q *taskQueue) runDue(now time.Time) int {
	n := 0
	for len(q.h) > 0 && !q.h[0].when.After(now) {
		t := q.pop()
		t.fn(now)
		n++
	}
	return n
}
