package aserver

import (
	"net"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
)

// loop is the server's single thread of control: the analogue of the
// WaitForSomething()/Dispatch() cycle. It owns all device, client, atom,
// and property state.
func (s *Server) loop() {
	defer close(s.stopped)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	arm := func() {
		if when, ok := s.tasks.next(); ok {
			d := time.Until(when)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
		} else {
			timer.Reset(time.Hour)
		}
	}
	arm()
	for {
		select {
		case c := <-s.regCh:
			s.clients[c] = struct{}{}
		case c := <-s.unregCh:
			s.removeClient(c)
		case req := <-s.reqCh:
			if req.c.gone {
				break
			}
			if req.c.park != nil {
				// The connection is blocked mid-request; preserve FIFO
				// semantics by queueing what follows.
				req.c.pending = append(req.c.pending, req)
				break
			}
			s.dispatch(req)
		case fn := <-s.funcCh:
			fn()
			arm()
		case <-timer.C:
			s.tasks.runDue(time.Now())
			arm()
		case <-s.done:
			for c := range s.clients {
				s.dropClient(c)
			}
			return
		}
		// Re-arm after any work that may have scheduled tasks.
		if len(s.reqCh) == 0 {
			arm()
		}
	}
}

// dropClient severs a client immediately (queue overflow, shutdown).
func (s *Server) dropClient(c *client) {
	if c.gone {
		return
	}
	c.conn.Close()
	s.removeClient(c)
}

// removeClient releases a client's loop-side resources.
func (s *Server) removeClient(c *client) {
	if c.gone {
		return
	}
	c.gone = true
	delete(s.clients, c)
	for _, a := range c.acs {
		s.releaseAC(a)
	}
	c.acs = nil
	c.park = nil
	c.pending = nil
	// Wake the writer so it drains and closes the conn, and unblock the
	// reader.
	close(c.closed)
}

// releaseAC undoes an audio context's device-side bookkeeping.
func (s *Server) releaseAC(a *ac) {
	if a.recording {
		root := a.dev
		if root.IsView() {
			root = root.Parent()
		}
		root.RecRefCount--
		a.recording = false
	}
}

// updateDevice runs one periodic update for a root device: buffer
// maintenance, telephone events, pass-through patching, and resumption of
// blocked requests.
func (s *Server) updateDevice(d *core.Device) {
	d.Update()
	if line := s.lines[d.Index]; line != nil {
		s.pumpLineEvents(d, line)
	}
	if p := s.passThrough[d.Index]; p != nil {
		s.pumpPatch(p)
	}
	s.resumeParked(d)
}

// pumpLineEvents forwards pending telephone line events to interested
// clients.
func (s *Server) pumpLineEvents(d *core.Device, line *phonesim.Line) {
	for _, lev := range line.DrainEvents() {
		var code uint8
		switch lev.Kind {
		case phonesim.EvRing:
			code = proto.EventPhoneRing
		case phonesim.EvDTMF:
			code = proto.EventPhoneDTMF
		case phonesim.EvLoop:
			code = proto.EventPhoneLoop
		case phonesim.EvHook:
			code = proto.EventPhoneHookSwitch
		}
		s.deliverEvent(d.Index, code, lev.Detail, 0)
	}
}

// deliverEvent sends an event to every client that selected its class on
// the device. Per §5.2, events carry both the device time and the server
// host's clock time.
func (s *Server) deliverEvent(devIndex int, code uint8, detail byte, value uint32) {
	mask := proto.EventMaskFor(code)
	now := s.devices[devIndex].Now()
	host := time.Now()
	for c := range s.clients {
		if c.eventMasks[devIndex]&mask == 0 {
			continue
		}
		ev := proto.Event{
			Code:     code,
			Detail:   detail,
			Device:   uint32(devIndex),
			Time:     uint32(now),
			HostSec:  uint32(host.Unix()),
			HostNsec: uint32(host.Nanosecond()),
			Value:    value,
		}
		c.sendEvent(&ev)
	}
}

// resumeParked retries blocked requests touching device d.
func (s *Server) resumeParked(d *core.Device) {
	root := d
	if root.IsView() {
		root = root.Parent()
	}
	for c := range s.clients {
		if c.park == nil {
			continue
		}
		a := c.acs[acIDOf(c.park.req, c.order)]
		if a == nil {
			// AC vanished mid-block; drop the request.
			c.park = nil
			s.drainPending(c)
			continue
		}
		pr := a.dev
		if pr.IsView() {
			pr = pr.Parent()
		}
		if pr != root {
			continue
		}
		s.retryParked(c)
	}
}

// drainPending dispatches requests queued behind a block, stopping if one
// of them blocks in turn.
func (s *Server) drainPending(c *client) {
	for len(c.pending) > 0 && c.park == nil && !c.gone {
		req := c.pending[0]
		c.pending = c.pending[1:]
		s.dispatch(req)
	}
}

// patch is an enabled pass-through connection between two devices
// (§7.4.1): audio recorded on one is played on the other, both ways,
// entirely inside the server.
type patch struct {
	a, b   *core.Device
	aTaken atime.ATime // recorded frames of a consumed through here
	bTaken atime.ATime
	aOut   atime.ATime // next play time on a (for b's audio)
	bOut   atime.ATime // next play time on b (for a's audio)
	buf    []byte
}

// newPatch wires devices a and b together starting at their current times.
func newPatch(a, b *core.Device) *patch {
	lead := a.Backend().HWFrames() / 2
	return &patch{
		a: a, b: b,
		aTaken: a.Time(), bTaken: b.Time(),
		aOut: atime.Add(a.Now(), lead),
		bOut: atime.Add(b.Now(), lead),
		buf:  make([]byte, 4096*a.FrameBytes()),
	}
}

// pumpPatch moves newly recorded audio across the patch in both
// directions.
func (s *Server) pumpPatch(p *patch) {
	s.pumpPatchDir(p.a, p.b, &p.aTaken, &p.bOut)
	s.pumpPatchDir(p.b, p.a, &p.bTaken, &p.aOut)
}

func (s *Server) pumpPatchDir(src, dst *core.Device, taken *atime.ATime, out *atime.ATime) {
	now := src.Now()
	n := int(atime.Sub(now, *taken))
	if n <= 0 {
		return
	}
	max := len(s.passScratch(src)) / src.FrameBytes()
	for n > 0 {
		c := n
		if c > max {
			c = max
		}
		buf := s.passScratch(src)[:c*src.FrameBytes()]
		src.Record(*taken, buf, src.Cfg.Enc, 0)
		// Keep the output cursor inside dst's near future; resynchronize
		// after stalls or clock drift.
		lead := dst.Backend().HWFrames()
		dnow := dst.Now()
		if atime.Before(*out, dnow) || atime.After(*out, atime.Add(dnow, 2*lead)) {
			*out = atime.Add(dnow, lead/2)
		}
		dst.Play(*out, buf, src.Cfg.Enc, 0, false)
		*out = atime.Add(*out, c)
		*taken = atime.Add(*taken, c)
		n -= c
	}
}

// passScratch returns a staging buffer for pass-through copies.
func (s *Server) passScratch(d *core.Device) []byte {
	if p := s.passThrough[d.Index]; p != nil {
		return p.buf
	}
	// The reverse direction uses the patch registered on the peer.
	for _, p := range s.passThrough {
		if p.a == d || p.b == d {
			return p.buf
		}
	}
	return make([]byte, 4096*d.FrameBytes())
}

// hostAllowed applies host-based access control to a new connection.
func (s *Server) hostAllowed(conn net.Conn) bool {
	allowed := true
	s.Do(func() {
		if !s.accessEnabled {
			return
		}
		entry := hostEntryFor(conn.RemoteAddr())
		if entry.Family == proto.FamilyLocal {
			return // local connections are always allowed
		}
		for _, h := range s.accessList {
			if h.Family == entry.Family && string(h.Addr) == string(entry.Addr) {
				return
			}
		}
		allowed = false
	})
	return allowed
}

// hostEntryFor classifies a remote address for the access list.
func hostEntryFor(addr net.Addr) proto.HostEntry {
	switch a := addr.(type) {
	case *net.TCPAddr:
		if v4 := a.IP.To4(); v4 != nil {
			return proto.HostEntry{Family: proto.FamilyInternet, Addr: v4}
		}
		return proto.HostEntry{Family: proto.FamilyInternet6, Addr: a.IP}
	default:
		return proto.HostEntry{Family: proto.FamilyLocal, Addr: []byte("local")}
	}
}
