package aserver

import (
	"net"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/proto"
)

// loop is the server's control plane: the analogue of the paper's
// WaitForSomething()/Dispatch() cycle, slimmed to the operations that
// touch genuinely global state (client registry, atoms, properties, host
// access, AC lifecycle, pass-through enables). The data plane — plays,
// records, time queries — runs on the per-device engines without passing
// through here.
func (s *Server) loop() {
	defer close(s.stopped)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	// armedFor is the deadline the timer was last armed for; zero while
	// the queue is empty (the timer idles at an hour).
	var armedFor time.Time
	arm := func() {
		if when, ok := s.tasks.next(); ok {
			d := time.Until(when)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			armedFor = when
		} else {
			timer.Reset(time.Hour)
			armedFor = time.Time{}
		}
	}
	arm()
	for {
		select {
		case c := <-s.regCh:
			// MaxClients is a soft cap: the newcomer is admitted and the
			// oldest-idle client is shed (its teardown completes on its
			// own goroutines, so the registry can transiently exceed max).
			if max := s.budget.maxClients; max > 0 {
				s.clientMu.RLock()
				n := len(s.clients)
				s.clientMu.RUnlock()
				for ; n >= max && s.shedOldestIdle(c); n-- {
				}
			}
			s.clientMu.Lock()
			s.clients[c] = struct{}{}
			s.clientMu.Unlock()
			s.sm.connects.Inc()
			s.sm.activeClients.Add(1)
		case c := <-s.unregCh:
			s.removeClient(c)
		case req := <-s.reqCh:
			if !req.c.dead.Load() {
				s.dispatch(req)
			}
			if req.done != nil {
				close(req.done)
			}
		case fn := <-s.funcCh:
			fn()
		case <-timer.C:
			s.tasks.runDue(time.Now())
			armedFor = time.Time{}
			arm()
		case <-s.done:
			s.clientMu.RLock()
			cs := make([]*client, 0, len(s.clients))
			for c := range s.clients {
				cs = append(cs, c)
			}
			s.clientMu.RUnlock()
			for _, c := range cs {
				s.removeClient(c)
			}
			return
		}
		// Re-arm whenever the earliest deadline moved up. This used to be
		// skipped while the request channel was non-empty, which delayed
		// freshly scheduled tasks under sustained load.
		if when, ok := s.tasks.next(); ok && (armedFor.IsZero() || when.Before(armedFor)) {
			arm()
		}
	}
}

// removeClient releases a client's server-side resources. Runs in the
// loop, either after the reader exited (unregister) or at shutdown.
func (s *Server) removeClient(c *client) {
	if c.removed {
		return
	}
	c.removed = true
	c.dead.Store(true)
	// Classify the disconnect before counting it: every reader of the
	// counters then sees disconnects <= evictions + sheds + drains +
	// client closes, with equality once the server is drained.
	s.sm.closeCounterFor(c.closeReason.Load()).Inc()
	s.sm.disconnects.Inc()
	s.sm.activeClients.Add(-1)
	s.clientMu.Lock()
	delete(s.clients, c)
	s.clientMu.Unlock()
	// Discard any blocked request the client still holds; this releases
	// its pinned buffers and its reader if it is waiting on the park.
	// Broadcast subscriptions go with it, so the channel pump stops
	// encoding for formats only this client wanted.
	for _, e := range s.engines {
		e.dropClientParks(c)
		e.dropClientSubs(c)
	}
	for _, a := range c.acs {
		s.releaseAC(a)
	}
	// Wake the writer so it drains and closes the conn, and unblock the
	// reader.
	close(c.closed)
}

// releaseAC undoes an audio context's device-side bookkeeping: the
// record refcount and any broadcast subscription.
func (s *Server) releaseAC(a *ac) {
	// Both flags are guarded by the engine lock: recording races only
	// with this context's own (ordered) requests, but subscribed is also
	// cleared by the pump's dead-subscriber sweep on scheduler workers.
	e := s.engineByDev[a.devIndex]
	e.mu.Lock()
	if a.recording {
		e.root.RecRefCount--
		a.recording = false
	}
	e.unsubscribeLocked(a)
	e.mu.Unlock()
}

// deliverEvent sends an event to every client that selected its class on
// the device. Per §5.2, events carry both the device time (supplied by
// the caller, read under the owning engine's lock) and the server host's
// clock time. Safe from the loop and from engine goroutines.
func (s *Server) deliverEvent(devIndex int, now atime.ATime, code uint8, detail byte, value uint32) {
	mask := proto.EventMaskFor(code)
	host := time.Now()
	s.clientMu.RLock()
	defer s.clientMu.RUnlock()
	for c := range s.clients {
		if c.eventMasks[devIndex]&mask == 0 {
			continue
		}
		ev := proto.Event{
			Code:     code,
			Detail:   detail,
			Device:   uint32(devIndex),
			Time:     uint32(now),
			HostSec:  uint32(host.Unix()),
			HostNsec: uint32(host.Nanosecond()),
			Value:    value,
		}
		c.sendEvent(&ev)
	}
}

// deviceTime reads a device's buffer-write time under its engine's lock.
func (s *Server) deviceTime(dev uint32) atime.ATime {
	e := s.engineByDev[dev]
	e.mu.Lock()
	t := s.devices[dev].Time()
	e.mu.Unlock()
	return t
}

// deviceNow reads a device's current time under its engine's lock.
func (s *Server) deviceNow(dev uint32) atime.ATime {
	e := s.engineByDev[dev]
	e.mu.Lock()
	t := s.devices[dev].Now()
	e.mu.Unlock()
	return t
}

// updateEngine runs one update cycle on the engine owning dev, used by
// control operations that need an immediate device-side effect (hook
// events, shutdown flushes).
func (s *Server) updateEngine(dev uint32) {
	e := s.engineByDev[dev]
	e.mu.Lock()
	e.updateLocked()
	e.mu.Unlock()
}

// patch is an enabled pass-through connection between two devices
// (§7.4.1): audio recorded on one is played on the other, both ways,
// entirely inside the server. The staging buffer lives on the patch for
// its whole life, so pumping never allocates.
type patch struct {
	a, b   *core.Device
	aTaken atime.ATime // recorded frames of a consumed through here
	bTaken atime.ATime
	aOut   atime.ATime // next play time on a (for b's audio)
	bOut   atime.ATime // next play time on b (for a's audio)
	buf    []byte
}

// newPatch wires devices a and b together starting at their current
// times. Both engines' locks are held by the caller.
func newPatch(a, b *core.Device) *patch {
	lead := a.Backend().HWFrames() / 2
	return &patch{
		a: a, b: b,
		aTaken: a.Time(), bTaken: b.Time(),
		aOut: atime.Add(a.Now(), lead),
		bOut: atime.Add(b.Now(), lead),
		buf:  make([]byte, 4096*a.FrameBytes()),
	}
}

// hostAllowed applies host-based access control to a new connection.
func (s *Server) hostAllowed(conn net.Conn) bool {
	allowed := true
	s.Do(func() {
		if !s.accessEnabled {
			return
		}
		entry := hostEntryFor(conn.RemoteAddr())
		if entry.Family == proto.FamilyLocal {
			return // local connections are always allowed
		}
		for _, h := range s.accessList {
			if h.Family == entry.Family && string(h.Addr) == string(entry.Addr) {
				return
			}
		}
		allowed = false
	})
	return allowed
}

// hostEntryFor classifies a remote address for the access list.
func hostEntryFor(addr net.Addr) proto.HostEntry {
	switch a := addr.(type) {
	case *net.TCPAddr:
		if v4 := a.IP.To4(); v4 != nil {
			return proto.HostEntry{Family: proto.FamilyInternet, Addr: v4}
		}
		return proto.HostEntry{Family: proto.FamilyInternet6, Addr: a.IP}
	default:
		return proto.HostEntry{Family: proto.FamilyLocal, Addr: []byte("local")}
	}
}
