package aserver

import (
	"encoding/json"
	"net"
	"net/http"
)

// StatsHandler returns an http.Handler exposing the server's metrics:
//
//	/stats       the structured Snapshot as JSON (what astat consumes)
//	/debug/vars  the flat expvar-compatible view of the registry
//
// The handler only reads — a scrape takes each engine lock briefly to
// copy the device counters, so polling it during playback is safe.
func (s *Server) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot()) //nolint:errcheck — client went away mid-scrape
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.sm.reg.WriteExpvar(w)
	})
	return mux
}

// ListenStats serves the stats endpoints on addr in the background (the
// afd -stats flag). The returned listener carries the bound address;
// closing it stops the endpoint. The HTTP server dies with the listener,
// so Server.Close does not need to know about it.
func (s *Server) ListenStats(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		srv := &http.Server{Handler: s.StatsHandler()}
		srv.Serve(l) //nolint:errcheck — ends when the listener closes
	}()
	return l, nil
}
