package aserver

import (
	"fmt"
	"testing"
)

// TestDirectoryDeterministic: two independently built rings over the
// same backends agree on every placement — the property that lets a
// router fleet (and a test) compute placements with no coordination.
func TestDirectoryDeterministic(t *testing.T) {
	backends := []string{"afd-a:7000", "afd-b:7000", "afd-c:7000"}
	d1 := NewDirectory(backends, 64)
	d2 := NewDirectory(backends, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("device-%d", i)
		if a, b := d1.Lookup(key), d2.Lookup(key); a != b {
			t.Fatalf("placement of %q differs across builds: %d vs %d", key, a, b)
		}
	}
	// Order of the backend list must not change placement identity:
	// the ring hashes names, not indices.
	shuffled := []string{"afd-c:7000", "afd-a:7000", "afd-b:7000"}
	d3 := NewDirectory(shuffled, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("device-%d", i)
		if backends[d1.Lookup(key)] != shuffled[d3.Lookup(key)] {
			t.Fatalf("placement of %q depends on backend list order", key)
		}
	}
}

// TestDirectoryStability: adding one backend to N moves only ~K/(N+1)
// of K keys, and removing it restores the original placement exactly.
func TestDirectoryStability(t *testing.T) {
	const keys = 4000
	base := []string{"afd-0", "afd-1", "afd-2", "afd-3"}
	grown := append(append([]string(nil), base...), "afd-4")
	d := NewDirectory(base, 0)
	dg := NewDirectory(grown, 0)

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("device-%d", i)
		was := base[d.Lookup(key)]
		now := grown[dg.Lookup(key)]
		if was != now {
			moved++
			if now != "afd-4" {
				t.Fatalf("key %q moved %s -> %s, not to the new backend", key, was, now)
			}
		}
	}
	// Expect ~keys/5 moves; allow generous slop for hash variance.
	want := keys / 5
	if moved < want/2 || moved > want*2 {
		t.Fatalf("adding 1 of 5 backends moved %d/%d keys, want about %d", moved, keys, want)
	}

	// Removal is the inverse: rebuilding without afd-4 restores every
	// placement (the ring has no history).
	dr := NewDirectory(base, 0)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("device-%d", i)
		if d.Lookup(key) != dr.Lookup(key) {
			t.Fatalf("key %q placement not restored after remove", key)
		}
	}
}

// TestDirectoryBalance: virtual points spread keys within a reasonable
// factor of even.
func TestDirectoryBalance(t *testing.T) {
	backends := []string{"afd-0", "afd-1", "afd-2", "afd-3", "afd-4"}
	d := NewDirectory(backends, 0)
	counts := make([]int, len(backends))
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[d.Lookup(fmt.Sprintf("device-%d", i))]++
	}
	even := keys / len(backends)
	for i, n := range counts {
		if n < even/3 || n > even*3 {
			t.Fatalf("backend %d holds %d/%d keys (even share %d): ring badly unbalanced %v",
				i, n, keys, even, counts)
		}
	}
}

// TestDirectoryAvoidsDownBackends: LookupLive never returns a backend
// the liveness predicate rejects, falls back clockwise deterministically,
// and returns -1 only when nothing is live.
func TestDirectoryAvoidsDownBackends(t *testing.T) {
	backends := []string{"afd-0", "afd-1", "afd-2"}
	d := NewDirectory(backends, 0)
	down := map[int]bool{}
	live := func(i int) bool { return !down[i] }

	for kill := 0; kill < len(backends); kill++ {
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("device-%d", i)
			got := d.LookupLive(key, live)
			if got < 0 {
				t.Fatalf("no placement for %q with %d/%d backends down", key, kill, len(backends))
			}
			if down[got] {
				t.Fatalf("key %q placed on down backend %d", key, got)
			}
			// A key whose owner is still up must not move.
			owner := d.Lookup(key)
			if !down[owner] && got != owner {
				t.Fatalf("key %q moved off its live owner %d to %d", key, owner, got)
			}
			// The failover target is the next live owner in preference
			// order — deterministic, so a router fleet agrees on it.
			for _, o := range d.Owners(key, len(backends)) {
				if !down[o] {
					if got != o {
						t.Fatalf("key %q placed on %d, want first live owner %d", key, got, o)
					}
					break
				}
			}
		}
		down[kill] = true
	}
	// Everything down: no placement.
	if got := d.LookupLive("device-1", live); got != -1 {
		t.Fatalf("LookupLive with all backends down = %d, want -1", got)
	}
}
