package aserver

import (
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// dispatch routes one request: data-plane ops to the owning engine,
// everything else through the control-plane switch. Callable from the
// server loop and, for data-plane ops, from any goroutine (the engines
// provide the locking).
func (s *Server) dispatch(req *request) {
	switch req.op {
	case proto.OpPlaySamples, proto.OpRecordSamples, proto.OpGetTime:
		s.dispatchHot(req)
	default:
		s.dispatchControl(req)
	}
}

// dispatchHot serves the hot ops — PlaySamples, RecordSamples, GetTime —
// inline on the caller's goroutine under the owning engine's lock. It
// returns the park when the request blocked; the caller must not
// dispatch another request for this connection until the park's done
// channel closes. The wrapper owns the per-type dispatch latency
// histogram; a parked request's latency is its time to park, not its
// time to completion (the park-duration histogram covers that).
func (s *Server) dispatchHot(req *request) *parked {
	t0 := time.Now()
	req.c.lastActive.Store(t0.UnixNano())
	p := s.dispatchHotInner(req)
	s.sm.dispatchFor(req.op).Observe(time.Since(t0).Nanoseconds())
	// A standalone dispatch is a batch of one. Ordered after the request
	// count (incremented in Inner), so DispatchBatch.Sum <= Requests in
	// every live snapshot and == once idle.
	s.sm.dispatchBatch.Observe(1)
	return p
}

// hotEngine shallow-decodes just enough of a hot request to name the
// engine that will serve it: the leading u32 of the body is the device
// (GetTime) or the AC id (play/record). nil means the batcher cannot
// place the request — short body, unknown device or AC — and it must
// dispatch standalone, which produces exactly the error replies the
// unbatched path would. Safe on the reader goroutine: c.acs is only
// mutated during control round trips, which are ordered against it.
func (s *Server) hotEngine(c *client, rf runFrame) *engine {
	body := *rf.frame
	if len(body) < 4 {
		return nil
	}
	v := c.order.Uint32(body)
	if rf.op == proto.OpGetTime {
		if !s.validDevice(v) {
			return nil
		}
		return s.engineByDev[v]
	}
	a := c.acs[v]
	if a == nil {
		return nil
	}
	return s.engineByDev[a.devIndex]
}

// dispatchHotGroup serves a run of hot requests that hotEngine placed on
// the same engine under ONE lock acquisition, with one time.Now() and
// batched metrics adds, staging small replies into one outgoing message.
// It consumes entries in order until a request parks (the park ends the
// group; the caller retries the rest after await) and reports how many
// it consumed plus the park, if any. The parked entry is always the last
// consumed one, and its frame belongs to the park; the caller recycles
// the others. req is the reader's scratch request, reused per entry.
func (s *Server) dispatchHotGroup(c *client, e *engine, run []runFrame, req *request) (int, *parked) {
	t0 := time.Now()
	c.lastActive.Store(t0.UnixNano())
	var park *parked
	var playBytes uint64
	var nPlay, nRec, nTime uint64
	consumed := 0
	acq := e.m.lockTimed(&e.mu)
	for _, rf := range run {
		consumed++
		seq := uint16(c.seq.Add(1))
		req.op, req.ext, req.body, req.frame, req.done = rf.op, rf.ext, *rf.frame, rf.frame, nil
		r := proto.NewReader(c.order, req.body)
		switch rf.op {
		case proto.OpGetTime:
			nTime++
			dev := proto.DecodeDeviceReq(r)
			// hotEngine already validated and placed dev; re-checked so the
			// two decode paths cannot drift.
			if !s.validDevice(dev) || s.engineByDev[dev] != e {
				c.stagedError(proto.ErrDevice, dev, rf.op, seq)
				continue
			}
			c.stagedReply(&proto.Reply{Time: uint32(s.devices[dev].Time())}, seq)

		case proto.OpPlaySamples:
			nPlay++
			q := proto.DecodePlaySamples(r, rf.ext)
			if r.Err != nil {
				c.stagedError(proto.ErrLength, 0, rf.op, seq)
				continue
			}
			a := c.acs[q.AC]
			if a == nil {
				c.stagedError(proto.ErrAC, q.AC, rf.op, seq)
				continue
			}
			playBytes += uint64(len(q.Data))
			e.m.playChunk.Observe(int64(len(q.Data)))
			if p := handlePlay(c, a, req, q, seq, true); p != nil {
				e.registerParkLocked(c, p)
				park = p
			}

		case proto.OpRecordSamples:
			nRec++
			q := proto.DecodeRecordSamples(r, rf.ext)
			if r.Err != nil {
				c.stagedError(proto.ErrLength, 0, rf.op, seq)
				continue
			}
			a := c.acs[q.AC]
			if a == nil {
				c.stagedError(proto.ErrAC, q.AC, rf.op, seq)
				continue
			}
			// finishRecordReply queues its reply directly; anything staged
			// so far must leave first to preserve reply order.
			c.flushStage()
			if p := handleRecord(c, a, e, req, q, seq); p != nil {
				e.registerParkLocked(c, p)
				park = p
			}
		}
		if park != nil {
			break
		}
	}
	// The stage leaves before the lock drops: once e.mu is released a
	// worker may finish the park and send its reply, which must queue
	// after every reply staged ahead of it.
	c.flushStage()
	if playBytes != 0 {
		e.m.playBytes.Add(playBytes)
	}
	e.m.unlockTimed(&e.mu, acq)
	k := int64(consumed)
	s.requestCount.Add(uint64(consumed))
	s.sm.dispatchBatch.Observe(k)
	e.m.dispatchBatch.Observe(k)
	// Per-request latency: the group's wall time amortized over its
	// members, observed per op class so the requests == Σ dispatch counts
	// law still holds.
	per := time.Since(t0).Nanoseconds() / k
	if nPlay != 0 {
		s.sm.dispatchPlay.ObserveN(per, nPlay)
	}
	if nRec != 0 {
		s.sm.dispatchRecord.ObserveN(per, nRec)
	}
	if nTime != 0 {
		s.sm.dispatchGetTime.ObserveN(per, nTime)
	}
	return consumed, park
}

func (s *Server) dispatchHotInner(req *request) *parked {
	c := req.c
	seq := uint16(c.seq.Add(1))
	s.requestCount.Add(1)
	r := proto.NewReader(c.order, req.body)
	switch req.op {
	case proto.OpGetTime:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op, seq)
			return nil
		}
		e := s.engineByDev[dev]
		acq := e.m.lockTimed(&e.mu)
		t := uint32(s.devices[dev].Time())
		e.m.unlockTimed(&e.mu, acq)
		e.m.dispatchBatch.Observe(1)
		c.sendReply(&proto.Reply{Time: t}, seq)

	case proto.OpPlaySamples:
		q := proto.DecodePlaySamples(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return nil
		}
		a := c.acs[q.AC]
		if a == nil {
			c.sendError(proto.ErrAC, q.AC, req.op, seq)
			return nil
		}
		e := s.engineByDev[a.devIndex]
		// Play ingress is counted here, the single entry point every
		// accepted PlaySamples request passes through (parked retries
		// re-consume the same bytes and are not re-counted).
		e.m.playBytes.Add(uint64(len(q.Data)))
		e.m.playChunk.Observe(int64(len(q.Data)))
		acq := e.m.lockTimed(&e.mu)
		p := handlePlay(c, a, req, q, seq, false)
		if p != nil {
			e.registerParkLocked(c, p)
		}
		e.m.unlockTimed(&e.mu, acq)
		e.m.dispatchBatch.Observe(1)
		return p

	case proto.OpRecordSamples:
		q := proto.DecodeRecordSamples(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return nil
		}
		a := c.acs[q.AC]
		if a == nil {
			c.sendError(proto.ErrAC, q.AC, req.op, seq)
			return nil
		}
		e := s.engineByDev[a.devIndex]
		acq := e.m.lockTimed(&e.mu)
		p := handleRecord(c, a, e, req, q, seq)
		if p != nil {
			e.registerParkLocked(c, p)
		}
		e.m.unlockTimed(&e.mu, acq)
		e.m.dispatchBatch.Observe(1)
		return p
	}
	return nil
}

// dispatchControl indexes the request type into the handler table, as
// the DIA dispatcher does. It runs in the server loop.
func (s *Server) dispatchControl(req *request) {
	t0 := time.Now()
	req.c.lastActive.Store(t0.UnixNano())
	s.dispatchControlInner(req)
	s.sm.dispatchControl.Observe(time.Since(t0).Nanoseconds())
	// Control ops always dispatch as a batch of one (ordered after the
	// request count, as in dispatchHot).
	s.sm.dispatchBatch.Observe(1)
}

func (s *Server) dispatchControlInner(req *request) {
	c := req.c
	seq := uint16(c.seq.Add(1))
	s.requestCount.Add(1)
	r := proto.NewReader(c.order, req.body)
	switch req.op {
	case proto.OpSelectEvents:
		q := proto.DecodeSelectEvents(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op, seq)
			return
		}
		s.clientMu.Lock()
		c.eventMasks[int(q.Device)] = q.Mask
		s.clientMu.Unlock()

	case proto.OpCreateAC:
		q := proto.DecodeCreateAC(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		s.handleCreateAC(c, req.op, q, seq)

	case proto.OpChangeACAttributes:
		q := proto.DecodeChangeAC(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		a := c.acs[q.AC]
		if a == nil {
			c.sendError(proto.ErrAC, q.AC, req.op, seq)
			return
		}
		s.applyACAttrs(c, req.op, a, q.Mask, q.Attrs, seq)

	case proto.OpFreeAC:
		id := r.U32()
		a := c.acs[id]
		if a == nil {
			c.sendError(proto.ErrAC, id, req.op, seq)
			return
		}
		s.releaseAC(a)
		delete(c.acs, id)

	case proto.OpSubscribe:
		id := proto.DecodeACReq(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		a := c.acs[id]
		if a == nil {
			c.sendError(proto.ErrAC, id, req.op, seq)
			return
		}
		e := s.engineByDev[a.devIndex]
		e.mu.Lock()
		code := e.subscribeLocked(c, a)
		now := a.dev.Now()
		e.mu.Unlock()
		if code != 0 {
			c.sendError(code, id, req.op, seq)
			return
		}
		// Aux identifies the channel the subscription joined: broadcast
		// messages are routed client-side by this device index.
		c.sendReply(&proto.Reply{Time: uint32(now), Aux: uint32(a.devIndex)}, seq)

	case proto.OpUnsubscribe:
		id := proto.DecodeACReq(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		a := c.acs[id]
		if a == nil {
			c.sendError(proto.ErrAC, id, req.op, seq)
			return
		}
		e := s.engineByDev[a.devIndex]
		e.mu.Lock()
		e.unsubscribeLocked(a)
		now := a.dev.Now()
		e.mu.Unlock()
		c.sendReply(&proto.Reply{Time: uint32(now)}, seq)

	case proto.OpQueryPhone:
		dev := proto.DecodeDeviceReq(r)
		line := s.lineFor(dev)
		if line == nil {
			c.sendError(proto.ErrMatch, dev, req.op, seq)
			return
		}
		var hook, loop uint32
		if line.OffHook() {
			hook = 1
		}
		if line.LoopCurrent() {
			loop = 1
		}
		c.sendReply(&proto.Reply{Data: uint8(hook), Aux: loop,
			Time: uint32(s.deviceTime(dev))}, seq)

	case proto.OpEnablePassThrough:
		q := proto.DecodePassThrough(r)
		s.handleEnablePassThrough(c, req.op, q, seq)

	case proto.OpDisablePassThrough:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op, seq)
			return
		}
		for _, e := range s.engines {
			e.mu.Lock()
			for idx, p := range e.patches {
				if p.a.Index == int(dev) || p.b.Index == int(dev) {
					delete(e.patches, idx)
				}
			}
			e.mu.Unlock()
		}

	case proto.OpHookSwitch:
		dev := proto.DecodeDeviceReq(r)
		line := s.lineFor(dev)
		if line == nil {
			c.sendError(proto.ErrMatch, dev, req.op, seq)
			return
		}
		line.SetHook(req.ext == proto.HookOff)
		s.updateEngine(dev) // deliver the hook event promptly

	case proto.OpFlashHook:
		q := proto.DecodeFlashHook(r)
		line := s.lineFor(q.Device)
		if line == nil {
			c.sendError(proto.ErrMatch, q.Device, req.op, seq)
			return
		}
		if !line.OffHook() {
			c.sendError(proto.ErrMatch, q.Device, req.op, seq)
			return
		}
		dur := time.Duration(q.DurationMs) * time.Millisecond
		if dur == 0 {
			dur = 500 * time.Millisecond
		}
		line.SetHook(false)
		dev := q.Device
		// The re-hook rides on the loop's own task timer; the engine is
		// only entered to deliver the event.
		s.tasks.addAfter(time.Now(), dur, func(time.Time) {
			if l := s.lineFor(dev); l != nil {
				l.SetHook(true)
				s.updateEngine(dev)
			}
		})
		s.updateEngine(dev)

	case proto.OpEnableGainControl:
		s.gainControl = true
	case proto.OpDisableGainControl:
		s.gainControl = false

	case proto.OpDialPhone:
		// Obsolete: FCC dialing timing cannot be met from the server's
		// tasking system; clients dial by playing tone pairs themselves.
		c.sendError(proto.ErrImplementation, 0, req.op, seq)

	case proto.OpSetInputGain:
		q := proto.DecodeGainReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op, seq)
			return
		}
		if q.Gain < minDeviceGain || q.Gain > maxDeviceGain {
			c.sendError(proto.ErrValue, uint32(q.Gain), req.op, seq)
			return
		}
		e := s.engineByDev[q.Device]
		e.mu.Lock()
		s.devices[q.Device].SetInputGain(int(q.Gain))
		e.mu.Unlock()

	case proto.OpSetOutputGain:
		q := proto.DecodeGainReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op, seq)
			return
		}
		if q.Gain < minDeviceGain || q.Gain > maxDeviceGain {
			c.sendError(proto.ErrValue, uint32(q.Gain), req.op, seq)
			return
		}
		e := s.engineByDev[q.Device]
		e.mu.Lock()
		s.devices[q.Device].SetOutputGain(int(q.Gain))
		e.mu.Unlock()

	case proto.OpQueryInputGain:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op, seq)
			return
		}
		e := s.engineByDev[dev]
		e.mu.Lock()
		cur := s.devices[dev].InputGain()
		e.mu.Unlock()
		s.sendGainReply(c, cur, seq)

	case proto.OpQueryOutputGain:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op, seq)
			return
		}
		e := s.engineByDev[dev]
		e.mu.Lock()
		cur := s.devices[dev].OutputGain()
		e.mu.Unlock()
		s.sendGainReply(c, cur, seq)

	case proto.OpEnableInput, proto.OpEnableOutput, proto.OpDisableInput, proto.OpDisableOutput:
		q := proto.DecodeDeviceMaskReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op, seq)
			return
		}
		d := s.devices[q.Device]
		e := s.engineByDev[q.Device]
		e.mu.Lock()
		switch req.op {
		case proto.OpEnableInput:
			d.EnableInputs(q.Mask)
		case proto.OpEnableOutput:
			d.EnableOutputs(q.Mask)
		case proto.OpDisableInput:
			d.DisableInputs(q.Mask)
		case proto.OpDisableOutput:
			d.DisableOutputs(q.Mask)
		}
		e.mu.Unlock()

	case proto.OpSetAccessControl:
		s.accessEnabled = req.ext != 0

	case proto.OpChangeHosts:
		q := proto.DecodeChangeHosts(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		s.handleChangeHosts(q)

	case proto.OpListHosts:
		w := proto.Writer{Order: c.order}
		proto.EncodeHostList(&w, s.accessList)
		enabled := uint8(0)
		if s.accessEnabled {
			enabled = 1
		}
		c.sendReply(&proto.Reply{Data: enabled, Aux: uint32(len(s.accessList)), Extra: w.Buf}, seq)

	case proto.OpInternAtom:
		q := proto.DecodeInternAtom(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		c.sendReply(&proto.Reply{Aux: s.atoms.intern(q.Name, q.OnlyIfExists)}, seq)

	case proto.OpGetAtomName:
		id := r.U32()
		name := s.atoms.name(id)
		if name == "" {
			c.sendError(proto.ErrAtom, id, req.op, seq)
			return
		}
		w := proto.Writer{Order: c.order}
		w.U16(uint16(len(name)))
		w.Skip(2)
		w.String4(name)
		c.sendReply(&proto.Reply{Aux: uint32(len(name)), Extra: w.Buf}, seq)

	case proto.OpChangeProperty:
		q := proto.DecodeChangeProperty(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op, seq)
			return
		}
		s.handleChangeProperty(c, req.op, q, seq)

	case proto.OpDeleteProperty:
		q := proto.DecodeDeleteProperty(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op, seq)
			return
		}
		if !s.atoms.valid(q.Property) {
			c.sendError(proto.ErrAtom, q.Property, req.op, seq)
			return
		}
		if _, ok := s.props[q.Device][q.Property]; ok {
			delete(s.props[q.Device], q.Property)
			s.deliverEvent(int(q.Device), s.deviceNow(q.Device), proto.EventPropertyChange, 1, q.Property)
		}

	case proto.OpGetProperty:
		q := proto.DecodeGetProperty(r, req.ext)
		s.handleGetProperty(c, req.op, q, seq)

	case proto.OpListProperties:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op, seq)
			return
		}
		w := proto.Writer{Order: c.order}
		n := 0
		for atom := range s.props[dev] {
			w.U32(atom)
			n++
		}
		c.sendReply(&proto.Reply{Aux: uint32(n), Extra: w.Buf}, seq)

	case proto.OpNoOperation:
		// Non-blocking no-op: no reply.

	case proto.OpSyncConnection:
		// Round-trip no-op.
		c.sendReply(&proto.Reply{}, seq)

	case proto.OpQueryExtension:
		_ = proto.DecodeQueryExtension(r)
		c.sendReply(&proto.Reply{Data: 0}, seq) // no extensions are implemented

	case proto.OpListExtensions:
		c.sendReply(&proto.Reply{Data: 0}, seq)

	case proto.OpKillClient:
		c.sendError(proto.ErrImplementation, 0, req.op, seq)

	default:
		c.sendError(proto.ErrRequest, uint32(req.op), req.op, seq)
	}
}

// Device gain limits, matching the utility library's table range.
const (
	minDeviceGain = -30
	maxDeviceGain = 30
)

func (s *Server) sendGainReply(c *client, cur int, seq uint16) {
	w := proto.Writer{Order: c.order}
	w.I32(minDeviceGain)
	w.I32(maxDeviceGain)
	c.sendReply(&proto.Reply{Aux: uint32(int32(cur)), Extra: w.Buf}, seq)
}

func (s *Server) validDevice(dev uint32) bool {
	return int(dev) < len(s.devices)
}

func (s *Server) lineFor(dev uint32) *phonesim.Line {
	if !s.validDevice(dev) {
		return nil
	}
	return s.lines[int(dev)]
}

func (s *Server) handleCreateAC(c *client, op uint8, q proto.CreateACReq, seq uint16) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op, seq)
		return
	}
	if _, exists := c.acs[q.AC]; exists {
		c.sendError(proto.ErrValue, q.AC, op, seq)
		return
	}
	d := s.devices[q.Device]
	a := &ac{
		id:       q.AC,
		dev:      d,
		devIndex: int(q.Device),
		enc:      d.Cfg.Enc,
		channels: d.Cfg.Channels,
	}
	if !s.applyACAttrs(c, op, a, q.Mask, q.Attrs, seq) {
		return
	}
	c.acs[q.AC] = a
}

// applyACAttrs validates and applies masked attributes; it reports
// success (errors have been sent on failure).
func (s *Server) applyACAttrs(c *client, op uint8, a *ac, mask uint32, attrs proto.ACAttributes, seq uint16) bool {
	if mask&proto.ACEncoding != 0 {
		e := sampleconv.Encoding(attrs.Type)
		if !e.Valid() {
			c.sendError(proto.ErrValue, uint32(attrs.Type), op, seq)
			return false
		}
		if e == sampleconv.ADPCM4 {
			// The compressed conversion module handles mono streams.
			if a.dev.Cfg.Channels != 1 {
				c.sendError(proto.ErrMatch, uint32(attrs.Type), op, seq)
				return false
			}
			a.playCoder = &sampleconv.ADPCMCoder{}
			a.recCoder = &sampleconv.ADPCMCoder{}
		}
		a.enc = e
	}
	if mask&proto.ACChannels != 0 {
		if int(attrs.Channels) != a.dev.Cfg.Channels {
			c.sendError(proto.ErrMatch, uint32(attrs.Channels), op, seq)
			return false
		}
		a.channels = int(attrs.Channels)
	}
	if mask&proto.ACPlayGain != 0 {
		a.playGain = int(attrs.PlayGain)
	}
	if mask&proto.ACRecordGain != 0 {
		a.recGain = int(attrs.RecGain)
	}
	if mask&proto.ACPreemption != 0 {
		a.preempt = attrs.Preempt != 0
	}
	return true
}

// clientFrameBytes returns the size of one frame of this context's sample
// data on the wire.
func (a *ac) clientFrameBytes() int {
	return a.enc.BytesPerSamples(1) * a.channels
}

// handlePlay runs under the owning engine's lock. It returns a park if
// the request blocked; the caller registers it. staged selects the reply
// route: group dispatch stages the ack into the batch message, the
// standalone path queues it directly.
func handlePlay(c *client, a *ac, req *request, q proto.PlaySamplesReq, seq uint16, staged bool) *parked {
	data := q.Data
	enc := a.enc
	if q.Flags&proto.SampleFlagBigEndian != 0 {
		sampleconv.SwapBytes(enc, data) // data aliases the request body, which we own
	}
	var decomp *[]byte // pool-owned decompression output, if any
	if enc == sampleconv.ADPCM4 {
		// Conversion module: decompress the stream before the buffering
		// engine sees it. State carries across requests. Both staging
		// buffers come from the pools; the lin16 scratch returns as soon
		// as it has been re-encoded to bytes.
		nlin := 2 * len(data)
		linp := getLin(nlin)
		a.playCoder.Decode(*linp, data)
		decomp = getBytes(2 * nlin)
		sampleconv.FromLin16(*decomp, sampleconv.LIN16, *linp, nlin)
		putLin(linp)
		data, enc = *decomp, sampleconv.LIN16
	}
	res := a.dev.Play(atime.ATime(q.Time), data, enc, a.playGain, a.preempt)
	if res.Blocked {
		// The tail lies beyond the buffer horizon: block the connection
		// until time advances (§6.1.5 "Beyond near future"). The pooled
		// request frame and any staging buffer stay checked out while the
		// park references them.
		cfb := enc.BytesPerSamples(1) * a.channels
		return &parked{
			c: c, a: a, op: req.op, ext: req.ext, seq: seq,
			frame:      req.frame,
			done:       make(chan struct{}),
			playData:   data[res.Consumed*cfb:],
			playTime:   uint32(atime.Add(atime.ATime(q.Time), res.Consumed)),
			playEnc:    enc,
			playPooled: decomp,
		}
	}
	if decomp != nil {
		putBytes(decomp)
	}
	if q.Flags&proto.SampleFlagSuppressReply == 0 {
		if staged {
			c.stagedReply(&proto.Reply{Time: uint32(res.Now)}, seq)
		} else {
			c.sendReply(&proto.Reply{Time: uint32(res.Now)}, seq)
		}
	}
	return nil
}

// handleRecord runs under e.mu. It returns a park if the request
// blocked; the caller registers it.
func handleRecord(c *client, a *ac, e *engine, req *request, q proto.RecordSamplesReq, seq uint16) *parked {
	if q.NBytes > proto.MaxRequestBytes {
		c.sendError(proto.ErrValue, q.NBytes, req.op, seq)
		return nil
	}
	if !a.recording {
		// First record under this context: mark it and enable the
		// periodic record update.
		a.recording = true
		e.root.RecRefCount++
	}
	if a.enc == sampleconv.ADPCM4 {
		return handleRecordADPCM(c, a, e, req, q, seq)
	}
	cfb := a.clientFrameBytes()
	want := int(q.NBytes) / cfb
	// Scatter-gather egress: check out the wire message up front and let
	// the device convert samples from the record ring straight into its
	// payload region. The engine lock we hold makes the in-place marshal
	// safe — nothing else can touch the ring or advance device time while
	// the conversion runs, and the message is private until c.send.
	m, payload := newRecordReplyMsg(want * cfb)
	res := a.dev.Record(atime.ATime(q.Time), payload, a.enc, a.recGain)
	if res.Avail < want && q.Flags&proto.SampleFlagNoBlock == 0 {
		// Blocking record: the connection waits until all requested data
		// has been captured. Schedule a precise wake-up task for the
		// moment the last sample will exist, rather than waiting for the
		// next periodic update — real-time clients (apass) depend on the
		// resume latency being small. The wire message returns to the
		// pool; the retry checks one out again.
		m.release()
		p := &parked{c: c, a: a, op: req.op, ext: req.ext, seq: seq,
			body: req.body, frame: req.frame, done: make(chan struct{})}
		end := atime.Add(atime.ATime(q.Time), want)
		if deficit := int(atime.Sub(end, res.Now)); deficit > 0 {
			wake := time.Duration(deficit)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			e.addTaskLocked(wake, func(time.Time) {
				if e.parks[c] == p {
					e.retryParked(c, p)
				}
			})
		}
		return p
	}
	finishRecordReply(c, a, m, res.Avail*cfb, uint32(res.Now), q.Flags, seq)
	return nil
}

// handleRecordADPCM is the compressed record path: capture linear
// samples, then run them through the context's ADPCM coder. A request for
// NBytes of ADPCM covers 2*NBytes sample frames. Runs under e.mu.
func handleRecordADPCM(c *client, a *ac, e *engine, req *request, q proto.RecordSamplesReq, seq uint16) *parked {
	wantBytes := int(q.NBytes)
	wantFrames := 2 * wantBytes
	linp := getBytes(2 * wantFrames) // lin16 staging
	res := a.dev.Record(atime.ATime(q.Time), *linp, sampleconv.LIN16, a.recGain)
	if res.Avail < wantFrames && q.Flags&proto.SampleFlagNoBlock == 0 {
		putBytes(linp)
		p := &parked{c: c, a: a, op: req.op, ext: req.ext, seq: seq,
			body: req.body, frame: req.frame, done: make(chan struct{})}
		end := atime.Add(atime.ATime(q.Time), wantFrames)
		if deficit := int(atime.Sub(end, res.Now)); deficit > 0 {
			wake := time.Duration(deficit)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			e.addTaskLocked(wake, func(time.Time) {
				if e.parks[c] == p {
					e.retryParked(c, p)
				}
			})
		}
		return p
	}
	frames := res.Avail &^ 1 // whole ADPCM bytes only
	samplesp := getLin(frames)
	sampleconv.ToLin16(*samplesp, *linp, sampleconv.LIN16, frames)
	putBytes(linp)
	// The coder's output goes straight into the wire message payload; the
	// compressed bytes are never staged separately. flags=0: ADPCM data
	// is a byte stream, never byte-swapped.
	m, payload := newRecordReplyMsg(frames / 2)
	a.recCoder.Encode(payload, *samplesp)
	putLin(samplesp)
	finishRecordReply(c, a, m, frames/2, uint32(res.Now), 0, seq)
	return nil
}

// handleEnablePassThrough validates a patch request and registers it on
// the lower-indexed engine, which pumps it (reaching the peer under an
// ascending two-lock acquire).
func (s *Server) handleEnablePassThrough(c *client, op uint8, q proto.PassThroughReq, seq uint16) {
	if !s.validDevice(q.Device) || !s.validDevice(q.Other) {
		c.sendError(proto.ErrDevice, q.Device, op, seq)
		return
	}
	a, b := s.devices[q.Device], s.devices[q.Other]
	if a == b || a.Cfg.Rate != b.Cfg.Rate || a.Cfg.Enc != b.Cfg.Enc ||
		a.Cfg.Channels != b.Cfg.Channels || a.IsView() || b.IsView() {
		c.sendError(proto.ErrMatch, q.Other, op, seq)
		return
	}
	lo, hi := s.engineByDev[a.Index], s.engineByDev[b.Index]
	if hi.idx < lo.idx {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	hi.mu.Lock()
	lo.patches[a.Index] = newPatch(a, b)
	hi.mu.Unlock()
	lo.mu.Unlock()
}

func (s *Server) handleChangeHosts(q proto.ChangeHostsReq) {
	switch q.Mode {
	case proto.HostInsert:
		for _, h := range s.accessList {
			if h.Family == q.Host.Family && string(h.Addr) == string(q.Host.Addr) {
				return
			}
		}
		// Copy the address: q.Host.Addr aliases the pooled request frame,
		// which is recycled after this dispatch returns.
		s.accessList = append(s.accessList, proto.HostEntry{
			Family: q.Host.Family,
			Addr:   append([]byte(nil), q.Host.Addr...),
		})
	case proto.HostDelete:
		out := s.accessList[:0]
		for _, h := range s.accessList {
			if h.Family == q.Host.Family && string(h.Addr) == string(q.Host.Addr) {
				continue
			}
			out = append(out, h)
		}
		s.accessList = out
	}
}

func (s *Server) handleChangeProperty(c *client, op uint8, q proto.ChangePropertyReq, seq uint16) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op, seq)
		return
	}
	if !s.atoms.valid(q.Property) || !s.atoms.valid(q.Type) {
		c.sendError(proto.ErrAtom, q.Property, op, seq)
		return
	}
	if q.Format != 8 && q.Format != 16 && q.Format != 32 {
		c.sendError(proto.ErrValue, uint32(q.Format), op, seq)
		return
	}
	props := s.props[q.Device]
	old := props[q.Property]
	data := append([]byte(nil), q.Data...)
	switch q.Mode {
	case proto.PropModeReplace:
		props[q.Property] = &property{typ: q.Type, format: q.Format, data: data}
	case proto.PropModePrepend, proto.PropModeAppend:
		if old != nil && (old.typ != q.Type || old.format != q.Format) {
			c.sendError(proto.ErrMatch, q.Property, op, seq)
			return
		}
		if old == nil {
			props[q.Property] = &property{typ: q.Type, format: q.Format, data: data}
		} else if q.Mode == proto.PropModePrepend {
			old.data = append(data, old.data...)
		} else {
			old.data = append(old.data, data...)
		}
	default:
		c.sendError(proto.ErrValue, uint32(q.Mode), op, seq)
		return
	}
	s.deliverEvent(int(q.Device), s.deviceNow(q.Device), proto.EventPropertyChange, 0, q.Property)
}

func (s *Server) handleGetProperty(c *client, op uint8, q proto.GetPropertyReq, seq uint16) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op, seq)
		return
	}
	if !s.atoms.valid(q.Property) {
		c.sendError(proto.ErrAtom, q.Property, op, seq)
		return
	}
	p := s.props[q.Device][q.Property]
	w := proto.Writer{Order: c.order}
	if p == nil {
		w.U32(proto.AtomNone)
		w.U32(0)
		c.sendReply(&proto.Reply{Data: 0, Extra: w.Buf}, seq)
		return
	}
	if q.Type != proto.AtomNone && q.Type != p.typ {
		// Type mismatch: report the actual type, deliver no data.
		w.U32(p.typ)
		w.U32(0)
		c.sendReply(&proto.Reply{Data: p.format, Extra: w.Buf}, seq)
		return
	}
	w.U32(p.typ)
	w.U32(uint32(len(p.data)))
	w.Bytes(p.data)
	c.sendReply(&proto.Reply{Data: p.format, Aux: uint32(len(p.data)), Extra: w.Buf}, seq)
	if q.Delete {
		delete(s.props[q.Device], q.Property)
		s.deliverEvent(int(q.Device), s.deviceNow(q.Device), proto.EventPropertyChange, 1, q.Property)
	}
}
