package aserver

import (
	"encoding/binary"
	"time"

	"audiofile/internal/atime"
	"audiofile/internal/core"
	"audiofile/internal/phonesim"
	"audiofile/internal/proto"
	"audiofile/internal/sampleconv"
)

// dispatch indexes the request type into the handler table, as the DIA
// dispatcher does. It runs in the server loop.
func (s *Server) dispatch(req *request) {
	c := req.c
	c.seq++
	s.requestCount++
	r := proto.NewReader(c.order, req.body)
	switch req.op {
	case proto.OpSelectEvents:
		q := proto.DecodeSelectEvents(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op)
			return
		}
		c.eventMasks[int(q.Device)] = q.Mask

	case proto.OpCreateAC:
		q := proto.DecodeCreateAC(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		s.handleCreateAC(c, req.op, q)

	case proto.OpChangeACAttributes:
		q := proto.DecodeChangeAC(r)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		a := c.acs[q.AC]
		if a == nil {
			c.sendError(proto.ErrAC, q.AC, req.op)
			return
		}
		s.applyACAttrs(c, req.op, a, q.Mask, q.Attrs)

	case proto.OpFreeAC:
		id := r.U32()
		a := c.acs[id]
		if a == nil {
			c.sendError(proto.ErrAC, id, req.op)
			return
		}
		s.releaseAC(a)
		delete(c.acs, id)

	case proto.OpPlaySamples:
		q := proto.DecodePlaySamples(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		s.handlePlay(c, req, q)

	case proto.OpRecordSamples:
		q := proto.DecodeRecordSamples(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		s.handleRecord(c, req, q)

	case proto.OpGetTime:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op)
			return
		}
		c.sendReply(&proto.Reply{Time: uint32(s.devices[dev].Time())})

	case proto.OpQueryPhone:
		dev := proto.DecodeDeviceReq(r)
		line := s.lineFor(dev)
		if line == nil {
			c.sendError(proto.ErrMatch, dev, req.op)
			return
		}
		var hook, loop uint32
		if line.OffHook() {
			hook = 1
		}
		if line.LoopCurrent() {
			loop = 1
		}
		c.sendReply(&proto.Reply{Data: uint8(hook), Aux: loop,
			Time: uint32(s.devices[dev].Time())})

	case proto.OpEnablePassThrough:
		q := proto.DecodePassThrough(r)
		s.handleEnablePassThrough(c, req.op, q)

	case proto.OpDisablePassThrough:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op)
			return
		}
		for idx, p := range s.passThrough {
			if p.a.Index == int(dev) || p.b.Index == int(dev) {
				delete(s.passThrough, idx)
			}
		}

	case proto.OpHookSwitch:
		dev := proto.DecodeDeviceReq(r)
		line := s.lineFor(dev)
		if line == nil {
			c.sendError(proto.ErrMatch, dev, req.op)
			return
		}
		line.SetHook(req.ext == proto.HookOff)
		s.updateDevice(s.rootOf(dev)) // deliver the hook event promptly

	case proto.OpFlashHook:
		q := proto.DecodeFlashHook(r)
		line := s.lineFor(q.Device)
		if line == nil {
			c.sendError(proto.ErrMatch, q.Device, req.op)
			return
		}
		if !line.OffHook() {
			c.sendError(proto.ErrMatch, q.Device, req.op)
			return
		}
		dur := time.Duration(q.DurationMs) * time.Millisecond
		if dur == 0 {
			dur = 500 * time.Millisecond
		}
		line.SetHook(false)
		dev := q.Device
		s.tasks.addAfter(dur, func() {
			if l := s.lineFor(dev); l != nil {
				l.SetHook(true)
				s.updateDevice(s.rootOf(dev))
			}
		})
		s.updateDevice(s.rootOf(dev))

	case proto.OpEnableGainControl:
		s.gainControl = true
	case proto.OpDisableGainControl:
		s.gainControl = false

	case proto.OpDialPhone:
		// Obsolete: FCC dialing timing cannot be met from the server's
		// tasking system; clients dial by playing tone pairs themselves.
		c.sendError(proto.ErrImplementation, 0, req.op)

	case proto.OpSetInputGain:
		q := proto.DecodeGainReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op)
			return
		}
		if q.Gain < minDeviceGain || q.Gain > maxDeviceGain {
			c.sendError(proto.ErrValue, uint32(q.Gain), req.op)
			return
		}
		s.devices[q.Device].SetInputGain(int(q.Gain))

	case proto.OpSetOutputGain:
		q := proto.DecodeGainReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op)
			return
		}
		if q.Gain < minDeviceGain || q.Gain > maxDeviceGain {
			c.sendError(proto.ErrValue, uint32(q.Gain), req.op)
			return
		}
		s.devices[q.Device].SetOutputGain(int(q.Gain))

	case proto.OpQueryInputGain:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op)
			return
		}
		s.sendGainReply(c, s.devices[dev].InputGain())

	case proto.OpQueryOutputGain:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op)
			return
		}
		s.sendGainReply(c, s.devices[dev].OutputGain())

	case proto.OpEnableInput, proto.OpEnableOutput, proto.OpDisableInput, proto.OpDisableOutput:
		q := proto.DecodeDeviceMaskReq(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op)
			return
		}
		d := s.devices[q.Device]
		switch req.op {
		case proto.OpEnableInput:
			d.EnableInputs(q.Mask)
		case proto.OpEnableOutput:
			d.EnableOutputs(q.Mask)
		case proto.OpDisableInput:
			d.DisableInputs(q.Mask)
		case proto.OpDisableOutput:
			d.DisableOutputs(q.Mask)
		}

	case proto.OpSetAccessControl:
		s.accessEnabled = req.ext != 0

	case proto.OpChangeHosts:
		q := proto.DecodeChangeHosts(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		s.handleChangeHosts(q)

	case proto.OpListHosts:
		w := proto.Writer{Order: c.order}
		proto.EncodeHostList(&w, s.accessList)
		enabled := uint8(0)
		if s.accessEnabled {
			enabled = 1
		}
		c.sendReply(&proto.Reply{Data: enabled, Aux: uint32(len(s.accessList)), Extra: w.Buf})

	case proto.OpInternAtom:
		q := proto.DecodeInternAtom(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		c.sendReply(&proto.Reply{Aux: s.atoms.intern(q.Name, q.OnlyIfExists)})

	case proto.OpGetAtomName:
		id := r.U32()
		name := s.atoms.name(id)
		if name == "" {
			c.sendError(proto.ErrAtom, id, req.op)
			return
		}
		w := proto.Writer{Order: c.order}
		w.U16(uint16(len(name)))
		w.Skip(2)
		w.String4(name)
		c.sendReply(&proto.Reply{Aux: uint32(len(name)), Extra: w.Buf})

	case proto.OpChangeProperty:
		q := proto.DecodeChangeProperty(r, req.ext)
		if r.Err != nil {
			c.sendError(proto.ErrLength, 0, req.op)
			return
		}
		s.handleChangeProperty(c, req.op, q)

	case proto.OpDeleteProperty:
		q := proto.DecodeDeleteProperty(r)
		if !s.validDevice(q.Device) {
			c.sendError(proto.ErrDevice, q.Device, req.op)
			return
		}
		if !s.atoms.valid(q.Property) {
			c.sendError(proto.ErrAtom, q.Property, req.op)
			return
		}
		if _, ok := s.props[q.Device][q.Property]; ok {
			delete(s.props[q.Device], q.Property)
			s.deliverEvent(int(q.Device), proto.EventPropertyChange, 1, q.Property)
		}

	case proto.OpGetProperty:
		q := proto.DecodeGetProperty(r, req.ext)
		s.handleGetProperty(c, req.op, q)

	case proto.OpListProperties:
		dev := proto.DecodeDeviceReq(r)
		if !s.validDevice(dev) {
			c.sendError(proto.ErrDevice, dev, req.op)
			return
		}
		w := proto.Writer{Order: c.order}
		n := 0
		for atom := range s.props[dev] {
			w.U32(atom)
			n++
		}
		c.sendReply(&proto.Reply{Aux: uint32(n), Extra: w.Buf})

	case proto.OpNoOperation:
		// Non-blocking no-op: no reply.

	case proto.OpSyncConnection:
		// Round-trip no-op.
		c.sendReply(&proto.Reply{})

	case proto.OpQueryExtension:
		_ = proto.DecodeQueryExtension(r)
		c.sendReply(&proto.Reply{Data: 0}) // no extensions are implemented

	case proto.OpListExtensions:
		c.sendReply(&proto.Reply{Data: 0})

	case proto.OpKillClient:
		c.sendError(proto.ErrImplementation, 0, req.op)

	default:
		c.sendError(proto.ErrRequest, uint32(req.op), req.op)
	}
}

// Device gain limits, matching the utility library's table range.
const (
	minDeviceGain = -30
	maxDeviceGain = 30
)

func (s *Server) sendGainReply(c *client, cur int) {
	w := proto.Writer{Order: c.order}
	w.I32(minDeviceGain)
	w.I32(maxDeviceGain)
	c.sendReply(&proto.Reply{Aux: uint32(int32(cur)), Extra: w.Buf})
}

func (s *Server) validDevice(dev uint32) bool {
	return int(dev) < len(s.devices)
}

func (s *Server) lineFor(dev uint32) *phonesim.Line {
	if !s.validDevice(dev) {
		return nil
	}
	return s.lines[int(dev)]
}

func (s *Server) rootOf(dev uint32) *core.Device {
	d := s.devices[dev]
	if d.IsView() {
		return d.Parent()
	}
	return d
}

func (s *Server) handleCreateAC(c *client, op uint8, q proto.CreateACReq) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op)
		return
	}
	if _, exists := c.acs[q.AC]; exists {
		c.sendError(proto.ErrValue, q.AC, op)
		return
	}
	d := s.devices[q.Device]
	a := &ac{
		id:       q.AC,
		dev:      d,
		devIndex: int(q.Device),
		enc:      d.Cfg.Enc,
		channels: d.Cfg.Channels,
	}
	if !s.applyACAttrs(c, op, a, q.Mask, q.Attrs) {
		return
	}
	c.acs[q.AC] = a
}

// applyACAttrs validates and applies masked attributes; it reports
// success (errors have been sent on failure).
func (s *Server) applyACAttrs(c *client, op uint8, a *ac, mask uint32, attrs proto.ACAttributes) bool {
	if mask&proto.ACEncoding != 0 {
		e := sampleconv.Encoding(attrs.Type)
		if !e.Valid() {
			c.sendError(proto.ErrValue, uint32(attrs.Type), op)
			return false
		}
		if e == sampleconv.ADPCM4 {
			// The compressed conversion module handles mono streams.
			if a.dev.Cfg.Channels != 1 {
				c.sendError(proto.ErrMatch, uint32(attrs.Type), op)
				return false
			}
			a.playCoder = &sampleconv.ADPCMCoder{}
			a.recCoder = &sampleconv.ADPCMCoder{}
		}
		a.enc = e
	}
	if mask&proto.ACChannels != 0 {
		if int(attrs.Channels) != a.dev.Cfg.Channels {
			c.sendError(proto.ErrMatch, uint32(attrs.Channels), op)
			return false
		}
		a.channels = int(attrs.Channels)
	}
	if mask&proto.ACPlayGain != 0 {
		a.playGain = int(attrs.PlayGain)
	}
	if mask&proto.ACRecordGain != 0 {
		a.recGain = int(attrs.RecGain)
	}
	if mask&proto.ACPreemption != 0 {
		a.preempt = attrs.Preempt != 0
	}
	return true
}

// clientFrameBytes returns the size of one frame of this context's sample
// data on the wire.
func (a *ac) clientFrameBytes() int {
	return a.enc.BytesPerSamples(1) * a.channels
}

func (s *Server) handlePlay(c *client, req *request, q proto.PlaySamplesReq) {
	a := c.acs[q.AC]
	if a == nil {
		c.sendError(proto.ErrAC, q.AC, req.op)
		return
	}
	data := q.Data
	enc := a.enc
	if q.Flags&proto.SampleFlagBigEndian != 0 {
		sampleconv.SwapBytes(enc, data) // data aliases the request body, which we own
	}
	var staged *[]byte // pool-owned decompression output, if any
	if enc == sampleconv.ADPCM4 {
		// Conversion module: decompress the stream before the buffering
		// engine sees it. State carries across requests. Both staging
		// buffers come from the pools; the lin16 scratch returns as soon
		// as it has been re-encoded to bytes.
		nlin := 2 * len(data)
		linp := getLin(nlin)
		a.playCoder.Decode(*linp, data)
		staged = getBytes(2 * nlin)
		sampleconv.FromLin16(*staged, sampleconv.LIN16, *linp, nlin)
		putLin(linp)
		data, enc = *staged, sampleconv.LIN16
	}
	res := a.dev.Play(atime.ATime(q.Time), data, enc, a.playGain, a.preempt)
	if res.Blocked {
		// The tail lies beyond the buffer horizon: block the connection
		// until time advances (§6.1.5 "Beyond near future"). A pooled
		// staging buffer stays checked out while the park references it.
		cfb := enc.BytesPerSamples(1) * a.channels
		c.park = &parked{
			req:        req,
			playData:   data[res.Consumed*cfb:],
			playTime:   uint32(atime.Add(atime.ATime(q.Time), res.Consumed)),
			playEnc:    enc,
			playPooled: staged,
		}
		return
	}
	if staged != nil {
		putBytes(staged)
	}
	if q.Flags&proto.SampleFlagSuppressReply == 0 {
		c.sendReply(&proto.Reply{Time: uint32(res.Now)})
	}
}

func (s *Server) handleRecord(c *client, req *request, q proto.RecordSamplesReq) {
	a := c.acs[q.AC]
	if a == nil {
		c.sendError(proto.ErrAC, q.AC, req.op)
		return
	}
	if q.NBytes > proto.MaxRequestBytes {
		c.sendError(proto.ErrValue, q.NBytes, req.op)
		return
	}
	if !a.recording {
		// First record under this context: mark it and enable the
		// periodic record update.
		a.recording = true
		root := a.dev
		if root.IsView() {
			root = root.Parent()
		}
		root.RecRefCount++
	}
	if a.enc == sampleconv.ADPCM4 {
		s.handleRecordADPCM(c, req, q, a)
		return
	}
	cfb := a.clientFrameBytes()
	want := int(q.NBytes) / cfb
	dstp := getBytes(want * cfb)
	res := a.dev.Record(atime.ATime(q.Time), *dstp, a.enc, a.recGain)
	if res.Avail < want && q.Flags&proto.SampleFlagNoBlock == 0 {
		// Blocking record: the connection waits until all requested data
		// has been captured. Schedule a precise wake-up task for the
		// moment the last sample will exist, rather than waiting for the
		// next periodic update — real-time clients (apass) depend on the
		// resume latency being small. The staging buffer returns to the
		// pool; the retry checks one out again.
		putBytes(dstp)
		p := &parked{req: req}
		c.park = p
		end := atime.Add(atime.ATime(q.Time), want)
		deficit := int(atime.Sub(end, res.Now))
		if deficit > 0 {
			wake := time.Duration(deficit)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			s.tasks.addAfter(wake, func() {
				if c.park == p && !c.gone {
					s.retryParked(c)
				}
			})
		}
		return
	}
	s.sendRecordReply(c, a, q, (*dstp)[:res.Avail*cfb], res.Now)
	putBytes(dstp) // reply marshaling copied the data
}

func (s *Server) sendRecordReply(c *client, a *ac, q proto.RecordSamplesReq, data []byte, now atime.ATime) {
	if q.Flags&proto.SampleFlagBigEndian != 0 {
		sampleconv.SwapBytes(a.enc, data)
	}
	c.sendReply(&proto.Reply{Time: uint32(now), Aux: uint32(len(data)), Extra: data})
}

// handleRecordADPCM is the compressed record path: capture linear
// samples, then run them through the context's ADPCM coder. A request for
// NBytes of ADPCM covers 2*NBytes sample frames.
func (s *Server) handleRecordADPCM(c *client, req *request, q proto.RecordSamplesReq, a *ac) {
	wantBytes := int(q.NBytes)
	wantFrames := 2 * wantBytes
	linp := getBytes(2 * wantFrames) // lin16 staging
	res := a.dev.Record(atime.ATime(q.Time), *linp, sampleconv.LIN16, a.recGain)
	if res.Avail < wantFrames && q.Flags&proto.SampleFlagNoBlock == 0 {
		putBytes(linp)
		p := &parked{req: req}
		c.park = p
		end := atime.Add(atime.ATime(q.Time), wantFrames)
		if deficit := int(atime.Sub(end, res.Now)); deficit > 0 {
			wake := time.Duration(deficit)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			s.tasks.addAfter(wake, func() {
				if c.park == p && !c.gone {
					s.retryParked(c)
				}
			})
		}
		return
	}
	frames := res.Avail &^ 1 // whole ADPCM bytes only
	samplesp := getLin(frames)
	sampleconv.ToLin16(*samplesp, *linp, sampleconv.LIN16, frames)
	putBytes(linp)
	outp := getBytes(frames / 2)
	a.recCoder.Encode(*outp, *samplesp)
	putLin(samplesp)
	c.sendReply(&proto.Reply{Time: uint32(res.Now), Aux: uint32(len(*outp)), Extra: *outp})
	putBytes(outp) // reply marshaling copied the data
}

// acIDOf extracts the AC id from a parked play/record request body.
func acIDOf(req *request, order binary.ByteOrder) uint32 {
	if len(req.body) < 4 {
		return 0
	}
	return order.Uint32(req.body)
}

// retryParked re-attempts a blocked request after time has advanced.
func (s *Server) retryParked(c *client) {
	p := c.park
	req := p.req
	a := c.acs[acIDOf(req, c.order)]
	if a == nil {
		c.park = nil
		s.drainPending(c)
		return
	}
	switch req.op {
	case proto.OpPlaySamples:
		res := a.dev.Play(atime.ATime(p.playTime), p.playData, p.playEnc, a.playGain, a.preempt)
		if res.Blocked {
			cfb := p.playEnc.BytesPerSamples(1) * a.channels
			p.playData = p.playData[res.Consumed*cfb:]
			p.playTime = uint32(atime.Add(atime.ATime(p.playTime), res.Consumed))
			return
		}
		c.park = nil
		if p.playPooled != nil {
			putBytes(p.playPooled)
		}
		if req.ext&proto.SampleFlagSuppressReply == 0 {
			c.sendReply(&proto.Reply{Time: uint32(res.Now)})
		}
	case proto.OpRecordSamples:
		r := proto.NewReader(c.order, req.body)
		q := proto.DecodeRecordSamples(r, req.ext)
		if a.enc == sampleconv.ADPCM4 {
			linp := getBytes(4 * int(q.NBytes))
			res := a.dev.Record(atime.ATime(q.Time), *linp, sampleconv.LIN16, a.recGain)
			if res.Avail < 2*int(q.NBytes) {
				putBytes(linp)
				return // still short; stay parked (a wake task is pending)
			}
			c.park = nil
			frames := res.Avail &^ 1
			samplesp := getLin(frames)
			sampleconv.ToLin16(*samplesp, *linp, sampleconv.LIN16, frames)
			putBytes(linp)
			outp := getBytes(frames / 2)
			a.recCoder.Encode(*outp, *samplesp)
			putLin(samplesp)
			c.sendReply(&proto.Reply{Time: uint32(res.Now), Aux: uint32(len(*outp)), Extra: *outp})
			putBytes(outp)
			break
		}
		cfb := a.clientFrameBytes()
		want := int(q.NBytes) / cfb
		dstp := getBytes(want * cfb)
		res := a.dev.Record(atime.ATime(q.Time), *dstp, a.enc, a.recGain)
		if res.Avail < want {
			// Still short (e.g. the clock runs slightly slow relative to
			// the wall-clock estimate): try again shortly.
			putBytes(dstp)
			p := c.park
			missing := want - res.Avail
			wake := time.Duration(missing)*time.Second/time.Duration(a.dev.Cfg.Rate) + time.Millisecond
			s.tasks.addAfter(wake, func() {
				if c.park == p && !c.gone {
					s.retryParked(c)
				}
			})
			return
		}
		c.park = nil
		s.sendRecordReply(c, a, q, *dstp, res.Now)
		putBytes(dstp)
	default:
		c.park = nil
	}
	if c.park == nil {
		s.drainPending(c)
	}
}

func (s *Server) handleEnablePassThrough(c *client, op uint8, q proto.PassThroughReq) {
	if !s.validDevice(q.Device) || !s.validDevice(q.Other) {
		c.sendError(proto.ErrDevice, q.Device, op)
		return
	}
	a, b := s.devices[q.Device], s.devices[q.Other]
	if a == b || a.Cfg.Rate != b.Cfg.Rate || a.Cfg.Enc != b.Cfg.Enc ||
		a.Cfg.Channels != b.Cfg.Channels || a.IsView() || b.IsView() {
		c.sendError(proto.ErrMatch, q.Other, op)
		return
	}
	s.passThrough[a.Index] = newPatch(a, b)
}

func (s *Server) handleChangeHosts(q proto.ChangeHostsReq) {
	switch q.Mode {
	case proto.HostInsert:
		for _, h := range s.accessList {
			if h.Family == q.Host.Family && string(h.Addr) == string(q.Host.Addr) {
				return
			}
		}
		s.accessList = append(s.accessList, q.Host)
	case proto.HostDelete:
		out := s.accessList[:0]
		for _, h := range s.accessList {
			if h.Family == q.Host.Family && string(h.Addr) == string(q.Host.Addr) {
				continue
			}
			out = append(out, h)
		}
		s.accessList = out
	}
}

func (s *Server) handleChangeProperty(c *client, op uint8, q proto.ChangePropertyReq) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op)
		return
	}
	if !s.atoms.valid(q.Property) || !s.atoms.valid(q.Type) {
		c.sendError(proto.ErrAtom, q.Property, op)
		return
	}
	if q.Format != 8 && q.Format != 16 && q.Format != 32 {
		c.sendError(proto.ErrValue, uint32(q.Format), op)
		return
	}
	props := s.props[q.Device]
	old := props[q.Property]
	data := append([]byte(nil), q.Data...)
	switch q.Mode {
	case proto.PropModeReplace:
		props[q.Property] = &property{typ: q.Type, format: q.Format, data: data}
	case proto.PropModePrepend, proto.PropModeAppend:
		if old != nil && (old.typ != q.Type || old.format != q.Format) {
			c.sendError(proto.ErrMatch, q.Property, op)
			return
		}
		if old == nil {
			props[q.Property] = &property{typ: q.Type, format: q.Format, data: data}
		} else if q.Mode == proto.PropModePrepend {
			old.data = append(data, old.data...)
		} else {
			old.data = append(old.data, data...)
		}
	default:
		c.sendError(proto.ErrValue, uint32(q.Mode), op)
		return
	}
	s.deliverEvent(int(q.Device), proto.EventPropertyChange, 0, q.Property)
}

func (s *Server) handleGetProperty(c *client, op uint8, q proto.GetPropertyReq) {
	if !s.validDevice(q.Device) {
		c.sendError(proto.ErrDevice, q.Device, op)
		return
	}
	if !s.atoms.valid(q.Property) {
		c.sendError(proto.ErrAtom, q.Property, op)
		return
	}
	p := s.props[q.Device][q.Property]
	w := proto.Writer{Order: c.order}
	if p == nil {
		w.U32(proto.AtomNone)
		w.U32(0)
		c.sendReply(&proto.Reply{Data: 0, Extra: w.Buf})
		return
	}
	if q.Type != proto.AtomNone && q.Type != p.typ {
		// Type mismatch: report the actual type, deliver no data.
		w.U32(p.typ)
		w.U32(0)
		c.sendReply(&proto.Reply{Data: p.format, Extra: w.Buf})
		return
	}
	w.U32(p.typ)
	w.U32(uint32(len(p.data)))
	w.Bytes(p.data)
	c.sendReply(&proto.Reply{Data: p.format, Aux: uint32(len(p.data)), Extra: w.Buf})
	if q.Delete {
		delete(s.props[q.Device], q.Property)
		s.deliverEvent(int(q.Device), proto.EventPropertyChange, 1, q.Property)
	}
}
