package aserver

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"audiofile/af"
	"audiofile/internal/proto"
	"audiofile/internal/vdev"
)

// Eviction-policy conformance: the slow-consumer state machine is pure
// (one atomic, explicit clock), so its contract is checked exhaustively
// with fabricated observations. Times are nanos on an arbitrary epoch.
func TestEvictPolicyConformance(t *testing.T) {
	const budget = 1000
	const grace = 100 * time.Millisecond
	// Observation times are offsets from a nonzero epoch: the policy's
	// clock is unix nanos with 0 reserved as the "under budget" sentinel.
	const epoch = int64(time.Hour)
	type obs struct {
		queued int64
		at     time.Duration // observation time from epoch
		drain  bool          // onDrain observation instead of onQueue
		want   flowVerdict   // ignored for drain observations
	}
	cases := []struct {
		name string
		rate int64
		seq  []obs
	}{
		{name: "under budget is always ok", seq: []obs{
			{queued: 0, at: 0, want: flowOK},
			{queued: budget, at: time.Hour, want: flowOK},
		}},
		{name: "first over-budget starts the clock", seq: []obs{
			{queued: budget + 1, at: 0, want: flowOver},
			{queued: budget + 1, at: grace / 2, want: flowOver},
		}},
		{name: "exactly the allowance is not yet eviction", seq: []obs{
			{queued: budget + 1, at: 0, want: flowOver},
			{queued: budget + 1, at: grace, want: flowOver},
		}},
		{name: "past the allowance is eviction", seq: []obs{
			{queued: budget + 1, at: 0, want: flowOver},
			{queued: budget + 1, at: grace + time.Nanosecond, want: flowEvict},
		}},
		{name: "rate extends the allowance by the audio owed", rate: 8000, seq: []obs{
			// 8000 B at 8000 B/s is one second of audio owed on top of grace.
			{queued: 8000, at: 0, want: flowOver},
			{queued: 8000, at: grace + time.Second, want: flowOver},
			{queued: 8000, at: grace + time.Second + time.Millisecond, want: flowEvict},
		}},
		{name: "shrinking queue shrinks the allowance", rate: 8000, seq: []obs{
			{queued: 8000, at: 0, want: flowOver},
			// Still over budget but down to 1200 bytes (150ms of audio
			// owed): the clock keeps its original start, so the smaller
			// allowance of grace+150ms has just expired.
			{queued: 1200, at: grace + 150*time.Millisecond + time.Millisecond, want: flowEvict},
		}},
		{name: "recovery just before the threshold is not evicted", seq: []obs{
			{queued: budget + 500, at: 0, want: flowOver},
			{queued: budget + 500, at: grace - time.Millisecond, want: flowOver},
			// The writer catches up: back under budget resets the clock.
			{queued: budget - 1, at: grace - time.Millisecond, drain: true},
			// A fresh excursion gets a fresh allowance, long after the
			// original clock would have expired.
			{queued: budget + 1, at: 10 * grace, want: flowOver},
			{queued: budget + 1, at: 11*grace - time.Millisecond, want: flowOver},
			{queued: budget + 1, at: 11*grace + time.Millisecond, want: flowEvict},
		}},
		{name: "onQueue under budget also resets", seq: []obs{
			{queued: budget + 1, at: 0, want: flowOver},
			{queued: budget, at: grace / 2, want: flowOK},
			{queued: budget + 1, at: 10 * grace, want: flowOver},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &evictPolicy{budget: budget, grace: grace, rate: tc.rate}
			for i, o := range tc.seq {
				if o.drain {
					p.onDrain(o.queued)
					continue
				}
				if got := p.onQueue(o.queued, epoch+int64(o.at)); got != o.want {
					t.Fatalf("obs %d (queued %d at %v): verdict %d, want %d",
						i, o.queued, o.at, got, o.want)
				}
			}
		})
	}
}

func TestEvictPolicyWriteAllowance(t *testing.T) {
	const epoch = int64(time.Hour)
	p := &evictPolicy{budget: 1000, grace: 100 * time.Millisecond}
	if _, armed := p.writeAllowance(500, epoch); armed {
		t.Error("deadline armed while under budget")
	}
	p.onQueue(2000, epoch)
	allow, armed := p.writeAllowance(2000, epoch+int64(40*time.Millisecond))
	if !armed || allow != 60*time.Millisecond {
		t.Errorf("writeAllowance = %v, %v; want 60ms, true", allow, armed)
	}
	// Past the allowance the deadline is floored, never zero or negative:
	// a late-armed deadline must still permit a write to complete.
	allow, armed = p.writeAllowance(2000, epoch+int64(time.Hour))
	if !armed || allow != 5*time.Millisecond {
		t.Errorf("expired writeAllowance = %v, %v; want 5ms floor", allow, armed)
	}
}

// rawFlooder opens a protocol session over the given transport and
// writes GetTime requests without ever reading a reply: the wedged
// consumer. Returns after n requests are written or the transport dies
// (reset by the server's eviction).
func rawFlooder(t *testing.T, srv *Server, n int) {
	t.Helper()
	nc := srv.DialPipe()
	setup := proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if err := setup.Send(nc); err != nil {
		t.Errorf("flooder setup: %v", err)
		return
	}
	if _, err := proto.ReadSetupReply(nc, binary.LittleEndian); err != nil {
		t.Errorf("flooder setup reply: %v", err)
		return
	}
	var w proto.Writer
	w.Order = binary.LittleEndian
	proto.AppendDeviceReq(&w, proto.OpGetTime, 0) //nolint:errcheck
	req := w.Buf
	for i := 0; i < n; i++ {
		if _, err := nc.Write(req); err != nil {
			return // evicted: the expected outcome
		}
	}
	// Keep the transport open (still never reading) so eviction, not a
	// client-side close, ends the session.
	<-time.After(10 * time.Second)
	nc.Close()
}

// TestWedgedReaderDoesNotStallOthers is the regression test for the
// blocking-send hazard: a client that stops reading its replies must be
// evicted within its configured allowance while a second client on the
// same device keeps playing, never blocked by the wedged writer.
func TestWedgedReaderDoesNotStallOthers(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices:          []DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:             func(string, ...any) {},
		ClientQueueBytes: 4 << 10,
		EvictGrace:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(256)
			srv.Sync()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	t.Cleanup(stepWG.Wait)
	t.Cleanup(func() { close(stop) })

	// The wedged client floods GetTime requests and never reads. Its
	// replies (16 bytes each) pile up in its send queue: past 4 KiB the
	// policy clock starts, and 50ms later the sweep or the writer's
	// missed deadline must evict it.
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		rawFlooder(t, srv, 100_000)
	}()

	// Meanwhile the healthy client on the same device must see every
	// play complete: the engine dispatches both clients' requests, so a
	// send that blocked on the wedged client's queue would stall this
	// one too.
	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	for i := 0; i < 50; i++ {
		now, err := ac.GetTime()
		if err != nil {
			t.Fatalf("healthy client GetTime %d: %v", i, err)
		}
		if _, err := ac.PlaySamples(now.Add(1024), data); err != nil {
			t.Fatalf("healthy client play %d during flood: %v", i, err)
		}
	}

	// The flooder must be evicted (not merely slowed) within its
	// allowance; poll briefly for the counter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := srv.Snapshot(); s.Evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			s := srv.Snapshot()
			t.Fatalf("wedged client not evicted: evictions=%d queued=%d", s.Evictions, s.QueuedBytes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	floodWG.Wait()
	conn.Close()

	// Settle and hold the close-reason conservation law to equality.
	deadline = time.Now().Add(5 * time.Second)
	for {
		s := srv.Snapshot()
		if s.Connects == s.Disconnects && s.ActiveClients == 0 {
			if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects != sum {
				t.Errorf("disconnects %d != evictions %d + sheds %d + drains %d + closes %d",
					s.Disconnects, s.Evictions, s.Sheds, s.Drains, s.ClientCloses)
			}
			if s.QueuedBytes != 0 {
				t.Errorf("queued bytes %d after all clients gone", s.QueuedBytes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients did not settle: connects=%d disconnects=%d active=%d",
				s.Connects, s.Disconnects, s.ActiveClients)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainGraceful checks the shutdown path: Drain lets buffered play
// audio reach the device tail before disconnecting anyone, classifies
// the disconnects it forces as drains, and leaves the conservation law
// at equality.
func TestDrainGraceful(t *testing.T) {
	clk := vdev.NewManualClock(8000)
	srv, err := New(Options{
		Devices: []DeviceSpec{{Kind: "codec", Name: "codec0", Clock: clk}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	conn, err := af.NewConn(srv.DialPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOErrorHandler(func(*af.Conn, error) {})
	ac, err := conn.CreateAC(0, 0, af.ACAttributes{})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(256)
	srv.Sync()
	now, err := ac.GetTime()
	if err != nil {
		t.Fatal(err)
	}
	// Buffer half a second of future audio, then ask for shutdown: the
	// drain must hold the server open until the clock consumes it.
	if _, err := ac.PlaySamples(now.Add(64), make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(256)
				srv.Sync()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	defer stepWG.Wait()
	defer close(stop)

	srv.Drain(10 * time.Second)

	s := srv.Snapshot()
	if s.Drains != 1 {
		t.Errorf("drains = %d, want 1 (the connected client)", s.Drains)
	}
	if sum := s.Evictions + s.Sheds + s.Drains + s.ClientCloses; s.Disconnects != sum {
		t.Errorf("disconnects %d != close reasons %d after drain", s.Disconnects, sum)
	}
	// All buffered audio must have been consumed, none discarded by the
	// shutdown: that is the "graceful" in graceful drain.
	for _, d := range s.Devices {
		if d.FramesDiscarded != 0 {
			t.Errorf("device %d discarded %d frames during drain", d.Index, d.FramesDiscarded)
		}
		if d.FramesAccepted != d.FramesBuffered {
			t.Errorf("device %d: accepted %d != buffered %d", d.Index, d.FramesAccepted, d.FramesBuffered)
		}
	}
}

// TestDrainRefusesSetup checks that a connection arriving after Drain
// has begun is refused at setup rather than silently hung.
func TestDrainRefusesSetup(t *testing.T) {
	srv, err := New(Options{
		Devices: []DeviceSpec{{Kind: "codec", Name: "codec0", Clock: vdev.NewManualClock(8000)}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	// Dial before Drain (afterwards the pipe endpoint is gone), but
	// handshake after: the setup must be refused.
	nc := srv.DialPipe()
	defer nc.Close()
	srv.draining.Store(true)
	defer srv.draining.Store(false)
	setup := proto.SetupRequest{
		ByteOrder: proto.LittleEndianOrder,
		Major:     proto.ProtocolMajor,
		Minor:     proto.ProtocolMinor,
	}
	if err := setup.Send(nc); err != nil {
		t.Fatal(err)
	}
	rep, err := proto.ReadSetupReply(nc, binary.LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Error("setup accepted while draining")
	}
}
