package aserver

import "audiofile/internal/proto"

// Atoms and properties (§5.9): short unique integer handles for strings,
// and named typed data attached to devices, adopted from X for
// inter-client communication.

type atomTable struct {
	names []string          // id -> name; index 0 is None
	ids   map[string]uint32 // name -> id
}

func newAtomTable() *atomTable {
	t := &atomTable{
		names: make([]string, len(proto.BuiltinAtomNames)),
		ids:   make(map[string]uint32),
	}
	for id, name := range proto.BuiltinAtomNames {
		if id == 0 {
			continue
		}
		t.names[id] = name
		t.ids[name] = uint32(id)
	}
	return t
}

// intern returns the atom for name, allocating one unless onlyIfExists.
func (t *atomTable) intern(name string, onlyIfExists bool) uint32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	if onlyIfExists {
		return 0
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// name returns the string for an atom id, or "" if unknown.
func (t *atomTable) name(id uint32) string {
	if id == 0 || int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// valid reports whether id names an existing atom.
func (t *atomTable) valid(id uint32) bool {
	return id != 0 && int(id) < len(t.names)
}

// property is named, typed data stored on a device.
type property struct {
	typ    uint32 // type atom
	format uint8  // 8, 16, or 32
	data   []byte
}
