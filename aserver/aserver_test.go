package aserver

import (
	"net"
	"testing"
	"time"

	"audiofile/internal/proto"
)

func TestTaskQueueOrdering(t *testing.T) {
	q := newTaskQueue()
	var order []int
	base := time.Now()
	q.add(base.Add(30*time.Millisecond), func(time.Time) { order = append(order, 3) })
	q.add(base.Add(10*time.Millisecond), func(time.Time) { order = append(order, 1) })
	q.add(base.Add(20*time.Millisecond), func(time.Time) { order = append(order, 2) })

	when, ok := q.next()
	if !ok || !when.Equal(base.Add(10*time.Millisecond)) {
		t.Fatalf("next = %v, %v", when, ok)
	}
	if n := q.runDue(base.Add(25 * time.Millisecond)); n != 2 {
		t.Fatalf("runDue ran %d tasks, want 2", n)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if n := q.runDue(base.Add(time.Second)); n != 1 {
		t.Fatalf("second runDue ran %d", n)
	}
	if _, ok := q.next(); ok {
		t.Error("queue not empty")
	}
}

func TestTaskQueueReschedulesSelf(t *testing.T) {
	q := newTaskQueue()
	count := 0
	base := time.Now()
	var tick func(time.Time)
	tick = func(time.Time) {
		count++
		if count < 3 {
			q.add(base.Add(time.Duration(count)*time.Millisecond), tick)
		}
	}
	q.add(base, tick)
	q.runDue(base.Add(time.Second))
	if count != 3 {
		t.Errorf("self-rescheduling task ran %d times, want 3", count)
	}
}

func TestAtomTable(t *testing.T) {
	at := newAtomTable()
	// Built-ins resolve both ways.
	if at.intern("STRING", true) != proto.AtomSTRING {
		t.Error("STRING not predefined")
	}
	if at.name(proto.AtomTELEPHONE) != "TELEPHONE" {
		t.Error("TELEPHONE name wrong")
	}
	// New atoms allocate past the predefined range and are stable.
	a := at.intern("FOO", false)
	if a <= proto.AtomLastPredefined {
		t.Errorf("new atom id %d overlaps predefined", a)
	}
	if at.intern("FOO", false) != a || at.intern("FOO", true) != a {
		t.Error("re-intern changed id")
	}
	if at.name(a) != "FOO" {
		t.Errorf("name(FOO) = %q", at.name(a))
	}
	// onlyIfExists misses return None.
	if at.intern("MISSING", true) != proto.AtomNone {
		t.Error("onlyIfExists allocated")
	}
	// Validity.
	if at.valid(0) || at.valid(99999) {
		t.Error("invalid ids reported valid")
	}
	if !at.valid(a) {
		t.Error("real id reported invalid")
	}
	if at.name(99999) != "" {
		t.Error("unknown id has a name")
	}
}

func TestHostEntryFor(t *testing.T) {
	tcp4 := &net.TCPAddr{IP: net.IPv4(10, 1, 2, 3), Port: 1234}
	e := hostEntryFor(tcp4)
	if e.Family != proto.FamilyInternet || len(e.Addr) != 4 {
		t.Errorf("v4 entry = %+v", e)
	}
	tcp6 := &net.TCPAddr{IP: net.ParseIP("2001:db8::1"), Port: 1}
	e = hostEntryFor(tcp6)
	if e.Family != proto.FamilyInternet6 || len(e.Addr) != 16 {
		t.Errorf("v6 entry = %+v", e)
	}
	unix := &net.UnixAddr{Name: "/tmp/x", Net: "unix"}
	e = hostEntryFor(unix)
	if e.Family != proto.FamilyLocal {
		t.Errorf("unix entry = %+v", e)
	}
}

func TestDeviceBuildErrors(t *testing.T) {
	if _, err := New(Options{Devices: []DeviceSpec{{Kind: "theremin"}},
		Logf: t.Logf}); err == nil {
		t.Error("unknown device kind accepted")
	}
	if _, err := New(Options{Devices: []DeviceSpec{},
		Logf: t.Logf}); err == nil {
		t.Error("empty device list accepted")
	}
}

func TestDefaultDeviceComplement(t *testing.T) {
	srv, err := New(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// phone0, codec0, hifi0, hifi0L, hifi0R — the Alofi arrangement.
	if srv.NumDevices() != 5 {
		t.Fatalf("NumDevices = %d, want 5", srv.NumDevices())
	}
	if srv.PhoneLine(0) == nil || srv.PhoneLine(1) != nil {
		t.Error("phone line wiring wrong")
	}
	if srv.Hardware(3) != srv.Hardware(2) {
		t.Error("mono view does not share the stereo hardware")
	}
	if srv.Device(2).Cfg.Channels != 2 || srv.Device(3).Cfg.Channels != 1 {
		t.Error("channel counts wrong")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, err := New(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // must not panic or hang
}

func TestDoAfterClose(t *testing.T) {
	srv, err := New(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ran := false
	srv.Do(func() { ran = true }) // must return, not deadlock
	if ran {
		t.Error("Do ran after close")
	}
}
